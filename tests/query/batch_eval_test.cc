// Batch-vs-serial differential tests for the word-parallel multi-subject
// pipeline: EvaluateForSubjects must produce, for every subject, answers
// byte-identical to N independent QueryEvaluator::Evaluate calls — across
// seeds, semantics (binding and view), ordered and unordered sibling
// matching, page-skip on and off, and >64-class chunking. The batch result's
// class structure (same-column subjects share one result) and the ExecStats
// rollup identity are pinned here too.

#include "query/batch_evaluator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/codebook.h"
#include "core/dol_labeling.h"
#include "exec/multi_cursor.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "query/query_driver.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

// `num_profiles` < `num_subjects` makes column-equal subjects: subject s
// draws the profile (s % num_profiles) ACL stream, so subjects sharing a
// profile have identical codebook columns — the dedup case the batch
// evaluator collapses.
void BuildFixture(uint64_t seed, size_t num_subjects, size_t num_profiles,
                  Fixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 300;
  xopts.target_nodes = 2000;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  IntervalAccessMap map(static_cast<NodeId>(f->doc.NumNodes()),
                        num_subjects);
  for (SubjectId s = 0; s < num_subjects; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = seed * 100 + s % num_profiles;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f->doc, aopts));
  }
  ASSERT_TRUE(map.Validate().ok());
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

std::vector<PatternTree> MakeQueries(const Document& doc, uint64_t seed,
                                     int count) {
  std::vector<PatternTree> queries;
  for (int i = 0; i < count; ++i) {
    QueryGenOptions qopts;
    qopts.seed = seed * 5000 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i % 5;
    queries.push_back(GenerateTwigQuery(doc, qopts));
  }
  return queries;
}

void ExpectStatsEqual(const ExecStats& a, const ExecStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.nodes_scanned, b.nodes_scanned) << what;
  EXPECT_EQ(a.codes_checked, b.codes_checked) << what;
  EXPECT_EQ(a.checks_elided, b.checks_elided) << what;
  EXPECT_EQ(a.pages_skipped, b.pages_skipped) << what;
  EXPECT_EQ(a.fetch_waits, b.fetch_waits) << what;
  EXPECT_EQ(a.access_only_fetches, b.access_only_fetches) << what;
  EXPECT_EQ(a.subjects_batched, b.subjects_batched) << what;
  EXPECT_EQ(a.classes_evaluated, b.classes_evaluated) << what;
  EXPECT_EQ(a.class_dedup_hits, b.class_dedup_hits) << what;
}

class BatchEvalTest : public ::testing::TestWithParam<int> {};

TEST_P(BatchEvalTest, BatchEqualsIndependentEvaluations) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  constexpr size_t kSubjects = 12, kProfiles = 5;
  Fixture f;
  BuildFixture(seed, kSubjects, kProfiles, &f);
  std::vector<PatternTree> queries = MakeQueries(f.doc, seed, 6);
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < kSubjects; ++s) subjects.push_back(s);

  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (bool ordered : {false, true}) {
      BatchEvaluator batch_eval(f.store.get());
      QueryEvaluator eval(f.store.get());
      for (const PatternTree& q : queries) {
        EvalOptions opts;
        opts.semantics = sem;
        opts.ordered_siblings = ordered;

        auto br = batch_eval.Evaluate(q, subjects, opts);
        ASSERT_TRUE(br.ok()) << br.status();

        for (size_t i = 0; i < subjects.size(); ++i) {
          opts.subject = subjects[i];
          auto r = eval.Evaluate(q, opts);
          ASSERT_TRUE(r.ok()) << r.status();
          const EvalResult& got = br->ResultFor(i);
          EXPECT_EQ(got.answers, r->answers)
              << "seed " << seed << " subject " << subjects[i]
              << " semantics " << static_cast<int>(sem) << " ordered "
              << ordered << ": " << q.ToString();
          EXPECT_EQ(got.fragment_matches, r->fragment_matches)
              << "seed " << seed << " subject " << subjects[i] << ": "
              << q.ToString();
        }
      }
    }
  }
}

TEST_P(BatchEvalTest, SameColumnSubjectsShareOneClass) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  constexpr size_t kSubjects = 12, kProfiles = 4;
  Fixture f;
  BuildFixture(seed, kSubjects, kProfiles, &f);
  std::vector<PatternTree> queries = MakeQueries(f.doc, seed + 1, 3);
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < kSubjects; ++s) subjects.push_back(s);

  // Ground truth: classes must be exactly the column partition.
  std::vector<SubjectClass> want_classes =
      GroupSubjectsByColumn(f.store->codebook(), subjects);
  ASSERT_LT(want_classes.size(), kSubjects);  // profiles actually collide

  BatchEvaluator batch_eval(f.store.get());
  for (const PatternTree& q : queries) {
    EvalOptions opts;
    opts.semantics = AccessSemantics::kBinding;
    auto br = batch_eval.Evaluate(q, subjects, opts);
    ASSERT_TRUE(br.ok()) << br.status();

    ASSERT_EQ(br->classes.size(), want_classes.size());
    for (size_t k = 0; k < want_classes.size(); ++k) {
      EXPECT_EQ(br->classes[k].subjects, want_classes[k].members);
    }
    // Subject-to-class mapping is consistent and members literally share
    // the one result object (compute once, fan out).
    for (size_t i = 0; i < subjects.size(); ++i) {
      const ClassEvalResult& cls = br->classes[br->class_of[i]];
      EXPECT_NE(std::find(cls.subjects.begin(), cls.subjects.end(),
                          subjects[i]),
                cls.subjects.end());
      EXPECT_EQ(&br->ResultFor(i), &cls.result);
    }
    EXPECT_EQ(br->exec.subjects_batched, kSubjects);
    EXPECT_EQ(br->exec.classes_evaluated, want_classes.size());
    EXPECT_EQ(br->exec.class_dedup_hits, kSubjects - want_classes.size());
  }
}

TEST_P(BatchEvalTest, ExecRollupIsSumOfClassStats) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Fixture f;
  BuildFixture(seed, /*num_subjects=*/10, /*num_profiles=*/4, &f);
  std::vector<PatternTree> queries = MakeQueries(f.doc, seed + 2, 4);
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < 10; ++s) subjects.push_back(s);

  BatchEvaluator batch_eval(f.store.get());
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (const PatternTree& q : queries) {
      EvalOptions opts;
      opts.semantics = sem;
      auto br = batch_eval.Evaluate(q, subjects, opts);
      ASSERT_TRUE(br.ok()) << br.status();
      ExecStats summed;
      for (const ClassEvalResult& cls : br->classes) {
        summed += cls.result.exec;
        // Per-class exec is its own operator rollup.
        ExecStats ops = RollUp(cls.result.operators);
        ExpectStatsEqual(cls.result.exec, ops, "class rollup");
      }
      ExpectStatsEqual(br->exec, summed, "batch rollup");
      // The zero-extra-I/O property at batch granularity.
      EXPECT_EQ(br->exec.access_only_fetches, 0u);
    }
  }
}

TEST_P(BatchEvalTest, PageSkipOffMatchesOn) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Fixture f;
  BuildFixture(seed, /*num_subjects=*/8, /*num_profiles=*/3, &f);
  std::vector<PatternTree> queries = MakeQueries(f.doc, seed + 3, 4);
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < 8; ++s) subjects.push_back(s);

  BatchEvaluator batch_eval(f.store.get());
  for (const PatternTree& q : queries) {
    EvalOptions on, off;
    on.semantics = off.semantics = AccessSemantics::kBinding;
    on.page_skip = true;
    off.page_skip = false;
    auto ron = batch_eval.Evaluate(q, subjects, on);
    auto roff = batch_eval.Evaluate(q, subjects, off);
    ASSERT_TRUE(ron.ok() && roff.ok());
    for (size_t i = 0; i < subjects.size(); ++i) {
      EXPECT_EQ(ron->ResultFor(i).answers, roff->ResultFor(i).answers);
    }
    EXPECT_EQ(roff->exec.pages_skipped, 0u);
  }
}

TEST(BatchEvalTest, MoreThan64ClassesRunAsOneWideScan) {
  // 70 subjects with (almost surely) distinct columns used to spill past the
  // one-word mask and chunk into two scans; the wide mask runs them as one.
  // Answers must still match the per-subject path, and must also match a
  // forced-chunking run (the legacy layout, via batch_chunk_classes).
  Fixture f;
  BuildFixture(/*seed=*/7, /*num_subjects=*/70, /*num_profiles=*/70, &f);
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < 70; ++s) subjects.push_back(s);
  const size_t classes =
      GroupSubjectsByColumn(f.store->codebook(), subjects).size();
  ASSERT_GT(classes, 64u);  // wider than the PR 5 one-word cap
  ASSERT_LE(classes, kMaxBatchClasses);
  std::vector<PatternTree> queries = MakeQueries(f.doc, 77, 2);

  BatchEvaluator batch_eval(f.store.get());
  QueryEvaluator eval(f.store.get());
  for (const PatternTree& q : queries) {
    EvalOptions wide;
    wide.semantics = AccessSemantics::kBinding;
    auto br = batch_eval.Evaluate(q, subjects, wide);
    ASSERT_TRUE(br.ok()) << br.status();
    EXPECT_EQ(br->exec.subjects_batched, 70u);

    EvalOptions chunked = wide;
    chunked.batch_chunk_classes = 64;  // the old one-word layout
    auto bc = batch_eval.Evaluate(q, subjects, chunked);
    ASSERT_TRUE(bc.ok()) << bc.status();

    for (size_t i = 0; i < subjects.size(); ++i) {
      EvalOptions opts = wide;
      opts.subject = subjects[i];
      auto r = eval.Evaluate(q, opts);
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(br->ResultFor(i).answers, r->answers)
          << "subject " << subjects[i] << ": " << q.ToString();
      EXPECT_EQ(bc->ResultFor(i).answers, r->answers)
          << "chunked, subject " << subjects[i] << ": " << q.ToString();
    }
  }
}

// Width sweep across the word boundaries the wide mask has to get right:
// just past one word (65), multi-word (130), and the full mask (512, via
// 512 subjects whose profiles collide down to ~hundreds of classes plus a
// distinct-column run at smaller width). Wide scan == chunked scan ==
// per-subject Evaluate, across binding/view and ordered/unordered.
class WideBatchWidthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(WideBatchWidthTest, WideEqualsChunkedEqualsPerSubject) {
  const size_t width = GetParam();
  Fixture f;
  // Distinct profile per subject: classes == subjects (asserted below).
  BuildFixture(/*seed=*/31 + width, width, width, &f);
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < width; ++s) subjects.push_back(s);
  const size_t classes =
      GroupSubjectsByColumn(f.store->codebook(), subjects).size();
  ASSERT_GT(classes, 64u);
  ASSERT_LE(classes, kMaxBatchClasses);

  std::vector<PatternTree> queries = MakeQueries(f.doc, 91 + width, 2);
  BatchEvaluator batch_eval(f.store.get());
  QueryEvaluator eval(f.store.get());
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (bool ordered : {false, true}) {
      for (const PatternTree& q : queries) {
        EvalOptions wide;
        wide.semantics = sem;
        wide.ordered_siblings = ordered;
        auto br = batch_eval.Evaluate(q, subjects, wide);
        ASSERT_TRUE(br.ok()) << br.status();
        EXPECT_EQ(br->exec.subjects_batched, width);
        EXPECT_EQ(br->exec.classes_evaluated, classes);
        EXPECT_EQ(br->exec.access_only_fetches, 0u);

        // The pre-wide-mask layout: chunks of at most 64 classes.
        EvalOptions chunked = wide;
        chunked.batch_chunk_classes = 64;
        auto bc = batch_eval.Evaluate(q, subjects, chunked);
        ASSERT_TRUE(bc.ok()) << bc.status();

        for (size_t i = 0; i < subjects.size(); ++i) {
          EvalOptions opts = wide;
          opts.subject = subjects[i];
          auto r = eval.Evaluate(q, opts);
          ASSERT_TRUE(r.ok());
          EXPECT_EQ(br->ResultFor(i).answers, r->answers)
              << "width " << width << " subject " << subjects[i]
              << " semantics " << static_cast<int>(sem) << " ordered "
              << ordered << ": " << q.ToString();
          EXPECT_EQ(bc->ResultFor(i).answers, br->ResultFor(i).answers)
              << "chunked diverged, width " << width << " subject "
              << subjects[i] << ": " << q.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WideBatchWidthTest,
                         ::testing::Values(65, 130));

TEST(BatchEvalTest, FullWidthBatchRunsAsOneScan) {
  // kMaxBatchClasses subjects exercising every word of the mask. The doc is
  // kept small to bound runtime; semantics coverage lives in
  // WideBatchWidthTest.
  Fixture f;
  BuildFixture(/*seed=*/41, kMaxBatchClasses, kMaxBatchClasses, &f);
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < kMaxBatchClasses; ++s) subjects.push_back(s);
  const size_t classes =
      GroupSubjectsByColumn(f.store->codebook(), subjects).size();
  ASSERT_GT(classes, kMaxBatchClasses / 2);
  ASSERT_LE(classes, kMaxBatchClasses);

  PatternTree q = MakeQueries(f.doc, 123, 1)[0];
  BatchEvaluator batch_eval(f.store.get());
  QueryEvaluator eval(f.store.get());
  EvalOptions opts;
  opts.semantics = AccessSemantics::kBinding;
  auto br = batch_eval.Evaluate(q, subjects, opts);
  ASSERT_TRUE(br.ok()) << br.status();
  EXPECT_EQ(br->exec.classes_evaluated, classes);
  // Spot-check parity on a spread of subjects (full parity at this width is
  // covered by the chunked differential below).
  for (SubjectId s : {SubjectId{0}, SubjectId{64}, SubjectId{65},
                      SubjectId{255}, SubjectId{256},
                      static_cast<SubjectId>(kMaxBatchClasses - 1)}) {
    opts.subject = s;
    auto r = eval.Evaluate(q, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(br->ResultFor(s).answers, r->answers) << "subject " << s;
  }
  EvalOptions chunked = opts;
  chunked.batch_chunk_classes = 64;
  auto bc = batch_eval.Evaluate(q, subjects, chunked);
  ASSERT_TRUE(bc.ok()) << bc.status();
  for (size_t i = 0; i < subjects.size(); ++i) {
    EXPECT_EQ(bc->ResultFor(i).answers, br->ResultFor(i).answers)
        << "subject " << i;
  }
}

TEST(BatchEvalTest, DedupHitsMoveOnRepeatedProfileDraws) {
  // Randomized batch draws with repeated profiles — the bench-sweep shape
  // that used to report zero dedup hits. The counter must move whenever the
  // drawn subjects collapse onto fewer columns.
  Fixture f;
  BuildFixture(/*seed=*/19, /*num_subjects=*/24, /*num_profiles=*/6, &f);
  Rng rng(515);
  std::vector<SubjectId> subjects;
  for (int i = 0; i < 40; ++i) {
    subjects.push_back(static_cast<SubjectId>(rng.Uniform(24)));
  }
  const size_t classes =
      GroupSubjectsByColumn(f.store->codebook(), subjects).size();
  ASSERT_LT(classes, subjects.size());  // draws actually repeat profiles

  BatchEvaluator batch_eval(f.store.get());
  QueryEvaluator eval(f.store.get());
  PatternTree q = MakeQueries(f.doc, 19, 1)[0];
  EvalOptions opts;
  opts.semantics = AccessSemantics::kBinding;
  auto br = batch_eval.Evaluate(q, subjects, opts);
  ASSERT_TRUE(br.ok()) << br.status();
  EXPECT_EQ(br->exec.class_dedup_hits, subjects.size() - classes);
  EXPECT_GT(br->exec.class_dedup_hits, 0u);
  for (size_t i = 0; i < subjects.size(); ++i) {
    opts.subject = subjects[i];
    auto r = eval.Evaluate(q, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(br->ResultFor(i).answers, r->answers);
  }
}

TEST(BatchEvalTest, NoSemanticsCollapsesToOneClass) {
  Fixture f;
  BuildFixture(/*seed=*/11, /*num_subjects=*/6, /*num_profiles=*/6, &f);
  std::vector<SubjectId> subjects = {0, 1, 2, 3, 4, 5};
  std::vector<PatternTree> queries = MakeQueries(f.doc, 11, 2);

  BatchEvaluator batch_eval(f.store.get());
  QueryEvaluator eval(f.store.get());
  for (const PatternTree& q : queries) {
    EvalOptions opts;
    opts.semantics = AccessSemantics::kNone;
    auto br = batch_eval.Evaluate(q, subjects, opts);
    ASSERT_TRUE(br.ok()) << br.status();
    ASSERT_EQ(br->classes.size(), 1u);
    EXPECT_EQ(br->exec.classes_evaluated, 1u);
    EXPECT_EQ(br->exec.class_dedup_hits, 5u);
    auto r = eval.Evaluate(q, opts);
    ASSERT_TRUE(r.ok());
    for (size_t i = 0; i < subjects.size(); ++i) {
      EXPECT_EQ(br->ResultFor(i).answers, r->answers);
    }
  }
}

TEST(BatchEvalTest, EmptyBatchIsRejected) {
  Fixture f;
  BuildFixture(/*seed=*/13, /*num_subjects=*/2, /*num_profiles=*/2, &f);
  BatchEvaluator batch_eval(f.store.get());
  PatternTree q = MakeQueries(f.doc, 13, 1)[0];
  auto r = batch_eval.Evaluate(q, {}, EvalOptions{});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(BatchEvalTest, DriverEntryPointMatchesEvaluator) {
  Fixture f;
  BuildFixture(/*seed=*/17, /*num_subjects=*/8, /*num_profiles=*/3, &f);
  std::vector<SubjectId> subjects = {0, 1, 2, 3, 4, 5, 6, 7};
  PatternTree q = MakeQueries(f.doc, 17, 1)[0];

  QueryDriverOptions dopts;
  dopts.semantics = AccessSemantics::kView;
  QueryDriver driver(f.store.get(), dopts);
  auto br = driver.EvaluateForSubjects(q, subjects);
  ASSERT_TRUE(br.ok()) << br.status();

  QueryEvaluator eval(f.store.get());
  for (size_t i = 0; i < subjects.size(); ++i) {
    EvalOptions opts;
    opts.semantics = AccessSemantics::kView;
    opts.subject = subjects[i];
    auto r = eval.Evaluate(q, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(br->ResultFor(i).answers, r->answers);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchEvalTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace secxml
