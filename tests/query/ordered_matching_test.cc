#include <gtest/gtest.h>

#include <functional>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

/// Brute-force ordered twig oracle: enumerates assignments of pattern
/// children to strictly ascending data children, recursively. Exponential,
/// fine for small fixtures.
class OrderedOracle {
 public:
  OrderedOracle(const Document& doc, const PatternTree& pattern,
                std::function<bool(NodeId)> allowed)
      : doc_(doc), pattern_(pattern), allowed_(std::move(allowed)) {}

  /// All data nodes the returning pattern node can bind to over complete
  /// ordered matches rooted anywhere valid. Pattern edges below the root
  /// must be child edges (the tests use descendant axes only at the root).
  std::vector<NodeId> Answers() {
    std::vector<NodeId> out;
    std::vector<NodeId> binding(pattern_.nodes.size(), kInvalidNode);
    for (NodeId d = 0; d < doc_.NumNodes(); ++d) {
      if (!pattern_.nodes[0].descendant_axis && d != 0) break;
      if (!NodeMatches(0, d)) continue;
      binding[0] = d;
      RecurseInto(0, d, &binding, [&]() {
        out.push_back(binding[pattern_.returning_node]);
      });
      binding[0] = kInvalidNode;
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  bool NodeMatches(int p, NodeId d) {
    const PatternNode& pn = pattern_.nodes[p];
    if (!allowed_(d)) return false;
    if (pn.tag != "*" && doc_.TagName(d) != pn.tag) return false;
    if (pn.has_value && doc_.Value(d) != pn.value) return false;
    return true;
  }

  /// Assigns p's pattern subtree below an already-bound data node d, then
  /// calls `cont` for every complete assignment.
  void RecurseInto(int p, NodeId d, std::vector<NodeId>* binding,
                   const std::function<void()>& cont) {
    RecurseChildren(p, 0, d, kInvalidNode, binding, cont);
  }

  void RecurseChildren(int p, size_t idx, NodeId d, NodeId min_after,
                       std::vector<NodeId>* binding,
                       const std::function<void()>& cont) {
    const PatternNode& pn = pattern_.nodes[p];
    if (idx == pn.children.size()) {
      cont();
      return;
    }
    int c = pn.children[idx];
    for (NodeId e = doc_.FirstChild(d); e != kInvalidNode;
         e = doc_.NextSibling(e)) {
      if (min_after != kInvalidNode && e <= min_after) continue;
      if (!NodeMatches(c, e)) continue;
      (*binding)[c] = e;
      RecurseInto(c, e, binding, [&]() {
        RecurseChildren(p, idx + 1, d, e, binding, cont);
      });
      (*binding)[c] = kInvalidNode;
    }
  }

  const Document& doc_;
  const PatternTree& pattern_;
  std::function<bool(NodeId)> allowed_;
};

std::unique_ptr<SecureStore> BuildStore(const Document& doc,
                                        const DolLabeling& labeling,
                                        MemPagedFile* file) {
  std::unique_ptr<SecureStore> store;
  EXPECT_TRUE(SecureStore::Build(doc, labeling, file, {}, &store).ok());
  return store;
}

DolLabeling AllAccessible(const Document& doc) {
  DenseAccessMap map(static_cast<NodeId>(doc.NumNodes()), 1, true);
  return DolLabeling::Build(map);
}

TEST(OrderedMatchingTest, SiblingOrderFiltersMatches) {
  // a(b c) matches /a[b][c] ordered, but a(c b) does not.
  for (auto [xml, expect] : {std::make_pair("<a><b/><c/></a>", true),
                             std::make_pair("<a><c/><b/></a>", false)}) {
    Document doc;
    ASSERT_TRUE(ParseXml(xml, &doc).ok());
    DolLabeling labeling = AllAccessible(doc);
    MemPagedFile file;
    auto store = BuildStore(doc, labeling, &file);
    QueryEvaluator eval(store.get());
    EvalOptions opts;
    opts.ordered_siblings = true;
    auto got = eval.EvaluateXPath("/a[b][c]", opts);
    ASSERT_TRUE(got.ok()) << xml;
    EXPECT_EQ(got->answers.size(), expect ? 1u : 0u) << xml;
    // Unordered matching accepts both.
    EvalOptions unordered;
    auto loose = eval.EvaluateXPath("/a[b][c]", unordered);
    ASSERT_TRUE(loose.ok());
    EXPECT_EQ(loose->answers.size(), 1u) << xml;
  }
}

TEST(OrderedMatchingTest, StrictlyAscendingNoSharedBinding) {
  // Pattern /a[b][b]: unordered lets both pattern children share the single
  // b; ordered needs two distinct ascending b children.
  Document one;
  ASSERT_TRUE(ParseXml("<a><b/></a>", &one).ok());
  Document two;
  ASSERT_TRUE(ParseXml("<a><b/><b/></a>", &two).ok());
  for (auto [docp, expect] :
       {std::make_pair(&one, false), std::make_pair(&two, true)}) {
    DolLabeling labeling = AllAccessible(*docp);
    MemPagedFile file;
    auto store = BuildStore(*docp, labeling, &file);
    QueryEvaluator eval(store.get());
    EvalOptions opts;
    opts.ordered_siblings = true;
    auto got = eval.EvaluateXPath("/a[b][b]", opts);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->answers.size(), expect ? 1u : 0u);
  }
}

TEST(OrderedMatchingTest, GreedyPitfallHandled) {
  // Pattern /a[b][b/c]: the first data b (with c) must not be consumed by
  // the looser first pattern child in a way that starves the second.
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/><b><c/></b></a>", &doc).ok());
  DolLabeling labeling = AllAccessible(doc);
  MemPagedFile file;
  auto store = BuildStore(doc, labeling, &file);
  QueryEvaluator eval(store.get());
  EvalOptions opts;
  opts.ordered_siblings = true;
  auto got = eval.EvaluateXPath("/a[b][b/c]", opts);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->answers.size(), 1u);
  // Swapped data order: b(c) then b — pattern [b][b/c] now unsatisfiable.
  Document swapped;
  ASSERT_TRUE(ParseXml("<a><b><c/></b><b/></a>", &swapped).ok());
  DolLabeling lab2 = AllAccessible(swapped);
  MemPagedFile file2;
  auto store2 = BuildStore(swapped, lab2, &file2);
  QueryEvaluator eval2(store2.get());
  auto got2 = eval2.EvaluateXPath("/a[b][b/c]", opts);
  ASSERT_TRUE(got2.ok());
  EXPECT_TRUE(got2->answers.empty());
}

class OrderedOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(OrderedOracleTest, MatchesBruteForceWithAccessControl) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 53 + 11);
  XMarkOptions xopts;
  xopts.seed = static_cast<uint64_t>(GetParam()) + 40;
  xopts.target_nodes = 1200;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = static_cast<uint64_t>(GetParam());
  aopts.accessibility_ratio = 0.7;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, 2, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  MemPagedFile file;
  auto store = BuildStore(doc, labeling, &file);
  QueryEvaluator eval(store.get());

  for (const char* q :
       {"//item[location][name][quantity]", "//item[location][quantity]/name",
        "//text[bold][keyword]", "//category[name][description]",
        "//description/text[bold]"}) {
    PatternTree pattern;
    ASSERT_TRUE(ParseXPath(q, &pattern).ok());
    for (bool secure : {false, true}) {
      EvalOptions opts;
      opts.ordered_siblings = true;
      opts.semantics =
          secure ? AccessSemantics::kBinding : AccessSemantics::kNone;
      auto got = eval.Evaluate(pattern, opts);
      ASSERT_TRUE(got.ok()) << q;
      std::function<bool(NodeId)> allowed;
      if (secure) {
        allowed = [&labeling](NodeId n) { return labeling.Accessible(0, n); };
      } else {
        allowed = [](NodeId) { return true; };
      }
      OrderedOracle oracle(doc, pattern, allowed);
      ASSERT_EQ(got->answers, oracle.Answers())
          << q << " secure=" << secure << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderedOracleTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace secxml
