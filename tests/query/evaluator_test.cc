#include "query/evaluator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/policy.h"
#include "query/xpath_parser.h"
#include "reference_eval.h"
#include "storage/paged_file.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr const char* kPaperQueries[] = {
    "/site/regions/africa/item[location][name][quantity]",       // Q1
    "/site/categories/category[name]/description/text/bold",     // Q2
    "/site/categories/category/name[description/text/bold]",     // Q3
    "//parlist//parlist",                                        // Q4
    "//listitem//keyword",                                       // Q5
    "//item//emph",                                              // Q6
};

constexpr const char* kExtraQueries[] = {
    "//item[location][quantity]/name",
    "/site//item//keyword",
    "//category/description//bold",
    "/site/*/africa/item",
    "//listitem[text]//bold",
    "//item[location='africa']/name",
    "//a_tag_that_does_not_exist",
    "//description/text[bold][keyword]",
};

struct SecureFixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  std::vector<bool> accessible;  // subject 0
  std::vector<bool> visible;     // subject 0, view semantics

  static std::unique_ptr<SecureFixture> Make(uint32_t nodes, uint64_t seed,
                                             double accessibility_ratio,
                                             uint32_t records_per_page = 64) {
    auto f = std::make_unique<SecureFixture>();
    XMarkOptions xopts;
    xopts.seed = seed;
    xopts.target_nodes = nodes;
    EXPECT_TRUE(GenerateXMark(xopts, &f->doc).ok());
    NodeId n = static_cast<NodeId>(f->doc.NumNodes());
    Rng rng(seed * 131 + 7);
    // Two subjects with MSO-propagated rights; subject 0 is the one under
    // test, subject 1 adds multi-subject codebook structure.
    IntervalAccessMap map(n, 2);
    for (SubjectId s = 0; s < 2; ++s) {
      std::vector<AclSeed> seeds = {{0, rng.Bernoulli(accessibility_ratio)}};
      for (int i = 0; i < 40; ++i) {
        seeds.push_back({static_cast<NodeId>(rng.Uniform(n)),
                         rng.Bernoulli(accessibility_ratio)});
      }
      map.SetSubjectIntervals(s, PropagateMostSpecificOverride(f->doc, seeds));
    }
    f->labeling =
        DolLabeling::BuildFromEvents(n, map.InitialAcl(), map.CollectEvents());
    NokStoreOptions options;
    options.max_records_per_page = records_per_page;
    Status st =
        SecureStore::Build(f->doc, f->labeling, &f->file, options, &f->store);
    EXPECT_TRUE(st.ok()) << st;
    f->accessible.resize(n);
    f->visible.resize(n);
    for (NodeId x = 0; x < n; ++x) {
      f->accessible[x] = f->labeling.Accessible(0, x);
      NodeId p = f->doc.Parent(x);
      f->visible[x] =
          f->accessible[x] && (p == kInvalidNode || f->visible[p]);
    }
    return f;
  }
};

class EvaluatorSemanticsTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(EvaluatorSemanticsTest, MatchesReferenceOnAllQueries) {
  auto [seed, ratio] = GetParam();
  auto f = SecureFixture::Make(6000, static_cast<uint64_t>(seed), ratio);
  QueryEvaluator eval(f->store.get());
  std::vector<std::string> queries(std::begin(kPaperQueries),
                                   std::end(kPaperQueries));
  queries.insert(queries.end(), std::begin(kExtraQueries),
                 std::end(kExtraQueries));
  for (const std::string& q : queries) {
    PatternTree pattern;
    ASSERT_TRUE(ParseXPath(q, &pattern).ok()) << q;

    // Non-secure.
    EvalOptions opts;
    opts.semantics = AccessSemantics::kNone;
    auto got = eval.Evaluate(pattern, opts);
    ASSERT_TRUE(got.ok()) << q << ": " << got.status();
    auto want =
        ReferenceEvaluate(f->doc, pattern, [](NodeId) { return true; });
    ASSERT_EQ(got->answers, want) << "kNone " << q;

    // Binding semantics (Cho et al.) = ε-NoK.
    opts.semantics = AccessSemantics::kBinding;
    got = eval.Evaluate(pattern, opts);
    ASSERT_TRUE(got.ok()) << q;
    want = ReferenceEvaluate(f->doc, pattern,
                             [&f](NodeId x) { return f->accessible[x]; });
    ASSERT_EQ(got->answers, want) << "kBinding " << q;

    // View semantics (Gabillon-Bruno) = ε-NoK + ε-STD.
    opts.semantics = AccessSemantics::kView;
    got = eval.Evaluate(pattern, opts);
    ASSERT_TRUE(got.ok()) << q;
    want = ReferenceEvaluate(f->doc, pattern,
                             [&f](NodeId x) { return f->visible[x]; });
    ASSERT_EQ(got->answers, want) << "kView " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndRatios, EvaluatorSemanticsTest,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.3, 0.7)));

TEST(EvaluatorTest, PageSkipToggleGivesSameAnswers) {
  auto f = SecureFixture::Make(8000, 77, 0.2);
  QueryEvaluator eval(f->store.get());
  for (const char* q : kPaperQueries) {
    EvalOptions with_skip;
    with_skip.semantics = AccessSemantics::kBinding;
    with_skip.page_skip = true;
    EvalOptions without_skip = with_skip;
    without_skip.page_skip = false;
    auto a = eval.EvaluateXPath(q, with_skip);
    auto b = eval.EvaluateXPath(q, without_skip);
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    ASSERT_EQ(a->answers, b->answers) << q;
  }
}

TEST(EvaluatorTest, SecureEvaluationAddsNoPageReads) {
  // The paper's central claim (Sections 3.3, 5.2): ε-NoK accessibility
  // checks need no I/O beyond what NoK itself reads, because codes live in
  // the same pages as the structure.
  auto f = SecureFixture::Make(10000, 99, 0.7);
  QueryEvaluator eval(f->store.get());
  // Compiling the subject's access view reads each changed page once (the
  // check-free scan) — a one-time per-subject cost, not per-query I/O.
  // Warm it so the comparison below measures evaluation reads only.
  ASSERT_TRUE(f->store->View(0).ok());
  for (const char* q : kPaperQueries) {
    EvalOptions plain;
    plain.semantics = AccessSemantics::kNone;
    EvalOptions secure;
    secure.semantics = AccessSemantics::kBinding;

    ASSERT_TRUE(f->store->nok()->buffer_pool()->EvictAll().ok());
    f->store->nok()->buffer_pool()->mutable_stats()->Reset();
    ASSERT_TRUE(eval.EvaluateXPath(q, plain).ok());
    uint64_t plain_reads = f->store->io_stats().page_reads;

    ASSERT_TRUE(f->store->nok()->buffer_pool()->EvictAll().ok());
    f->store->nok()->buffer_pool()->mutable_stats()->Reset();
    ASSERT_TRUE(eval.EvaluateXPath(q, secure).ok());
    uint64_t secure_reads = f->store->io_stats().page_reads;

    EXPECT_LE(secure_reads, plain_reads) << q;
  }
}

TEST(EvaluatorTest, PageSkipAvoidsReadsAtLowAccessibility) {
  // When most of the document is inaccessible, the in-memory page headers
  // let ε-NoK skip whole pages (Section 3.3's optimization; the paper notes
  // the secure evaluator can then beat the non-secure one).
  auto f = SecureFixture::Make(20000, 123, 0.05, /*records_per_page=*/64);
  QueryEvaluator eval(f->store.get());
  EvalOptions secure;
  secure.semantics = AccessSemantics::kBinding;
  uint64_t total_skipped = 0;
  for (const char* q : kPaperQueries) {
    ASSERT_TRUE(f->store->nok()->buffer_pool()->EvictAll().ok());
    f->store->nok()->buffer_pool()->mutable_stats()->Reset();
    ASSERT_TRUE(eval.EvaluateXPath(q, secure).ok());
    total_skipped += f->store->io_stats().pages_skipped;
  }
  EXPECT_GT(total_skipped, 0u);
}

TEST(EvaluatorTest, FullyInaccessibleDocumentReturnsNothing) {
  Document doc;
  XMarkOptions xopts;
  xopts.target_nodes = 2000;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  DenseAccessMap map(static_cast<NodeId>(doc.NumNodes()), 1, false);
  DolLabeling labeling = DolLabeling::Build(map);
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &file, {}, &store).ok());
  QueryEvaluator eval(store.get());
  EvalOptions secure;
  secure.semantics = AccessSemantics::kBinding;
  for (const char* q : kPaperQueries) {
    auto got = eval.EvaluateXPath(q, secure);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(got->answers.empty()) << q;
  }
}

TEST(EvaluatorTest, ViewSemanticsStricterThanBinding) {
  auto f = SecureFixture::Make(8000, 201, 0.5);
  QueryEvaluator eval(f->store.get());
  for (const char* q : kPaperQueries) {
    EvalOptions binding;
    binding.semantics = AccessSemantics::kBinding;
    EvalOptions view;
    view.semantics = AccessSemantics::kView;
    auto b = eval.EvaluateXPath(q, binding);
    auto v = eval.EvaluateXPath(q, view);
    ASSERT_TRUE(b.ok() && v.ok()) << q;
    // Every view answer is also a binding answer.
    ASSERT_TRUE(std::includes(b->answers.begin(), b->answers.end(),
                              v->answers.begin(), v->answers.end()))
        << q;
  }
}

TEST(EvaluatorTest, ValueConstraintsFilterAnswers) {
  auto f = SecureFixture::Make(5000, 301, 1.0);
  QueryEvaluator eval(f->store.get());
  EvalOptions opts;
  auto africa = eval.EvaluateXPath("//item[location='africa']", opts);
  auto all = eval.EvaluateXPath("//item[location]", opts);
  ASSERT_TRUE(africa.ok() && all.ok());
  EXPECT_GT(africa->answers.size(), 0u);
  EXPECT_LT(africa->answers.size(), all->answers.size());
  // Verify each answer really is an african item.
  for (NodeId item : africa->answers) {
    bool found = false;
    for (NodeId c = f->doc.FirstChild(item); c != kInvalidNode;
         c = f->doc.NextSibling(c)) {
      if (f->doc.TagName(c) == "location" && f->doc.Value(c) == "africa") {
        found = true;
      }
    }
    EXPECT_TRUE(found) << item;
  }
}

TEST(EvaluatorTest, AnswersReturnedShrinkWithAccessibility) {
  // Figure 7's "answers returned" curve: lower accessibility ratios filter
  // more answers.
  size_t prev = 0;
  bool first = true;
  for (double ratio : {0.2, 0.5, 0.9}) {
    auto f = SecureFixture::Make(8000, 42, ratio);
    QueryEvaluator eval(f->store.get());
    EvalOptions secure;
    secure.semantics = AccessSemantics::kBinding;
    size_t total = 0;
    for (const char* q : kPaperQueries) {
      auto got = eval.EvaluateXPath(q, secure);
      ASSERT_TRUE(got.ok());
      total += got->answers.size();
    }
    if (!first) EXPECT_GE(total, prev) << "ratio " << ratio;
    prev = total;
    first = false;
  }
}

TEST(EvaluatorTest, AttributeQueries) {
  // Attributes are "@"-prefixed child nodes, addressable like elements.
  auto f = SecureFixture::Make(4000, 77, 1.0);
  QueryEvaluator eval(f->store.get());
  auto ids = eval.EvaluateXPath("//item/@id", EvalOptions{});
  auto items = eval.EvaluateXPath("//item", EvalOptions{});
  ASSERT_TRUE(ids.ok() && items.ok());
  EXPECT_EQ(ids->answers.size(), items->answers.size());
  auto by_id = eval.EvaluateXPath("//item[@id='item3']", EvalOptions{});
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->answers.size(), 1u);
}

TEST(EvaluatorTest, RejectsUnparsableQuery) {
  auto f = SecureFixture::Make(1000, 1, 0.5);
  QueryEvaluator eval(f->store.get());
  EXPECT_FALSE(eval.EvaluateXPath("not an xpath", {}).ok());
}

}  // namespace
}  // namespace secxml
