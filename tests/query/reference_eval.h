#ifndef SECXML_TESTS_QUERY_REFERENCE_EVAL_H_
#define SECXML_TESTS_QUERY_REFERENCE_EVAL_H_

#include <algorithm>
#include <functional>
#include <unordered_set>
#include <vector>

#include "query/pattern_tree.h"
#include "xml/document.h"

namespace secxml {

/// Oracle twig evaluator used by the query tests: straightforward
/// set-at-a-time dynamic programming over the in-memory Document, entirely
/// independent of the NoK/DOL machinery under test. `candidate(n)` restricts
/// which data nodes may be bound at all (true = usable); pass an
/// accessibility or visibility predicate to model the secure semantics.
/// Returns the distinct data nodes bound to the returning node over all
/// homomorphisms, in document order.
inline std::vector<NodeId> ReferenceEvaluate(
    const Document& doc, const PatternTree& pattern,
    const std::function<bool(NodeId)>& candidate) {
  const size_t np = pattern.nodes.size();
  std::vector<std::vector<NodeId>> match(np);

  auto tag_ok = [&](const PatternNode& p, NodeId d) {
    if (p.tag != "*" && doc.TagName(d) != p.tag) return false;
    if (p.has_value && doc.Value(d) != p.value) return false;
    return true;
  };

  // Bottom-up feasibility (pattern nodes are in preorder).
  for (size_t pi = np; pi-- > 0;) {
    const PatternNode& p = pattern.nodes[pi];
    for (NodeId d = 0; d < doc.NumNodes(); ++d) {
      if (!candidate(d) || !tag_ok(p, d)) continue;
      bool ok = true;
      for (int c : p.children) {
        const PatternNode& pc = pattern.nodes[c];
        const std::vector<NodeId>& mc = match[c];
        auto it = std::upper_bound(mc.begin(), mc.end(), d);
        bool found = false;
        for (; it != mc.end() && *it < doc.SubtreeEnd(d); ++it) {
          if (pc.descendant_axis || doc.Parent(*it) == d) {
            found = true;
            break;
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
      if (ok) match[pi].push_back(d);
    }
  }

  // Top-down reachability.
  std::vector<std::unordered_set<NodeId>> reach(np);
  for (NodeId d : match[0]) {
    if (pattern.nodes[0].descendant_axis || d == 0) reach[0].insert(d);
  }
  for (size_t pi = 1; pi < np; ++pi) {
    const PatternNode& p = pattern.nodes[pi];
    const std::unordered_set<NodeId>& rp = reach[p.parent];
    for (NodeId d : match[pi]) {
      if (p.descendant_axis) {
        for (NodeId a = doc.Parent(d); a != kInvalidNode; a = doc.Parent(a)) {
          if (rp.count(a)) {
            reach[pi].insert(d);
            break;
          }
        }
      } else {
        NodeId a = doc.Parent(d);
        if (a != kInvalidNode && rp.count(a)) reach[pi].insert(d);
      }
    }
  }

  std::vector<NodeId> answers(reach[pattern.returning_node].begin(),
                              reach[pattern.returning_node].end());
  std::sort(answers.begin(), answers.end());
  return answers;
}

}  // namespace secxml

#endif  // SECXML_TESTS_QUERY_REFERENCE_EVAL_H_
