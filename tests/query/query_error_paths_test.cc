// Negative paths of the query front end: malformed XPath strings and
// malformed pattern trees must come back as clean InvalidArgument statuses
// (exercised under ASan in CI — no crashes, no leaks), and evaluating
// against unknown tags or subjects must degrade gracefully rather than
// fault.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/accessibility_map.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/decomposer.h"
#include "query/evaluator.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

void ExpectParseError(const std::string& xpath, const std::string& needle) {
  PatternTree tree;
  Status st = ParseXPath(xpath, &tree);
  ASSERT_FALSE(st.ok()) << "parsed: " << xpath;
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << xpath;
  EXPECT_NE(st.ToString().find(needle), std::string::npos)
      << xpath << " -> " << st.ToString();
}

TEST(XPathErrorPathsTest, MalformedQueriesReturnInvalidArgument) {
  ExpectParseError("", "query must start with '/' or '//'");
  ExpectParseError("site", "query must start with '/' or '//'");
  ExpectParseError("/", "expected name");
  ExpectParseError("//", "expected name");
  ExpectParseError("/site/", "expected name");
  ExpectParseError("/site//", "expected name");
  ExpectParseError("/site[", "expected name");
  ExpectParseError("/site[]", "expected name");
  ExpectParseError("/site[name", "expected ']'");
  ExpectParseError("/site[name]extra", "expected '/' or '//'");
  ExpectParseError("/site[name=", "expected quoted value");
  ExpectParseError("/site[name=x]", "expected quoted value");
  ExpectParseError("/site[name='v]", "unterminated value");
  ExpectParseError("/site[a[b[c", "expected ']'");
}

TEST(XPathErrorPathsTest, DeeplyNestedPredicatesAreRejectedNotOverflowed) {
  // 40 nested predicates exceed the parser's depth cap; the error must be a
  // clean status, not a stack overflow.
  std::string q = "/r";
  for (int i = 0; i < 40; ++i) q += "[a";
  for (int i = 0; i < 40; ++i) q += "]";
  ExpectParseError(q, "nested too deeply");
}

TEST(XPathErrorPathsTest, BoundaryDepthStillParses) {
  std::string q = "/r";
  for (int i = 0; i < 30; ++i) q += "[a";
  for (int i = 0; i < 30; ++i) q += "]";
  PatternTree tree;
  EXPECT_TRUE(ParseXPath(q, &tree).ok());
}

TEST(PatternTreeErrorPathsTest, DecomposeRejectsMalformedTrees) {
  // Decompose revalidates; every malformed tree must bounce cleanly.
  DecomposedQuery out;

  PatternTree empty;
  EXPECT_EQ(Decompose(empty, &out).code(), StatusCode::kInvalidArgument);

  PatternTree rooted;
  rooted.nodes.emplace_back();
  rooted.nodes[0].tag = "a";
  rooted.nodes[0].parent = 0;  // root may not have a parent
  EXPECT_EQ(Decompose(rooted, &out).code(), StatusCode::kInvalidArgument);

  PatternTree bad_return;
  bad_return.nodes.emplace_back();
  bad_return.nodes[0].tag = "a";
  bad_return.returning_node = 3;
  EXPECT_EQ(Decompose(bad_return, &out).code(),
            StatusCode::kInvalidArgument);

  PatternTree empty_tag;
  empty_tag.nodes.emplace_back();
  empty_tag.nodes[0].tag = "a";
  empty_tag.nodes.emplace_back();
  empty_tag.nodes[1].parent = 0;
  empty_tag.nodes[0].children.push_back(1);  // tag left empty
  EXPECT_EQ(Decompose(empty_tag, &out).code(), StatusCode::kInvalidArgument);

  PatternTree bad_link;
  bad_link.nodes.emplace_back();
  bad_link.nodes[0].tag = "a";
  bad_link.nodes.emplace_back();
  bad_link.nodes[1].tag = "b";
  bad_link.nodes[1].parent = 7;  // dangling parent
  EXPECT_EQ(Decompose(bad_link, &out).code(), StatusCode::kInvalidArgument);

  PatternTree mislinked;
  mislinked.nodes.emplace_back();
  mislinked.nodes[0].tag = "a";
  mislinked.nodes.emplace_back();
  mislinked.nodes[1].tag = "b";
  mislinked.nodes[1].parent = 0;
  mislinked.nodes.emplace_back();
  mislinked.nodes[2].tag = "c";
  mislinked.nodes[2].parent = 1;
  mislinked.nodes[0].children = {1, 2};  // 2's parent is 1, not 0
  mislinked.nodes[1].children = {2};
  EXPECT_EQ(Decompose(mislinked, &out).code(), StatusCode::kInvalidArgument);
}

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildTinyFixture(Fixture* f) {
  ASSERT_TRUE(
      ParseXml("<r><a><b/></a><a><b/><c/></a></r>", &f->doc).ok());
  DenseAccessMap map(f->doc.NumNodes(), /*num_subjects=*/1,
                     /*default_access=*/true);
  DolLabeling labeling = DolLabeling::Build(map);
  NokStoreOptions sopts;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

TEST(EvaluatorErrorPathsTest, UnknownTagsYieldEmptyAnswersNotErrors) {
  Fixture f;
  BuildTinyFixture(&f);
  QueryEvaluator eval(f.store.get());
  EvalOptions opts;
  for (const char* q : {"//nosuch", "/r/nosuch", "//a[nosuch]",
                        "/nosuch//a"}) {
    auto r = eval.EvaluateXPath(q, opts);
    ASSERT_TRUE(r.ok()) << q << ": " << r.status();
    EXPECT_TRUE(r->answers.empty()) << q;
  }
}

TEST(EvaluatorErrorPathsTest, UnknownSubjectIsInvalidArgument) {
  Fixture f;
  BuildTinyFixture(&f);
  QueryEvaluator eval(f.store.get());
  EvalOptions opts;
  opts.semantics = AccessSemantics::kBinding;
  opts.subject = 99;  // only subject 0 exists
  auto r = eval.EvaluateXPath("//a", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);

  opts.semantics = AccessSemantics::kView;
  r = eval.EvaluateXPath("//a", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(EvaluatorErrorPathsTest, MalformedXPathSurfacesThroughEvaluate) {
  Fixture f;
  BuildTinyFixture(&f);
  QueryEvaluator eval(f.store.get());
  EvalOptions opts;
  auto r = eval.EvaluateXPath("a[b", opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace secxml
