// Parallel-vs-serial differential test: the same randomized (subject,
// query) batch evaluated by QueryDriver on a worker pool and by the serial
// QueryEvaluator must produce identical per-query results, across several
// RNG seeds and under all three access semantics. This is the correctness
// contract of the concurrent read path: sharing one SecureStore across
// threads changes throughput, never answers.

#include "query/query_driver.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kNumSubjects = 4;

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildFixture(uint64_t seed, Fixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 300;
  xopts.target_nodes = 2500;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = seed + 700;
  aopts.accessibility_ratio = 0.6;
  IntervalAccessMap map =
      GenerateSyntheticAclMap(f->doc, kNumSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  // Tiny sharded pool: concurrent queries constantly evict each other's
  // pages, exercising the latch protocol rather than an always-warm cache.
  sopts.buffer_pool_pages = 16;
  sopts.buffer_pool_shards = 4;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

std::vector<QueryJob> MakeBatch(const Document& doc, uint64_t seed) {
  std::vector<QueryJob> jobs;
  for (int i = 0; i < 48; ++i) {
    QueryJob job;
    job.subject = static_cast<SubjectId>(i % kNumSubjects);
    QueryGenOptions qopts;
    qopts.seed = seed * 4000 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i % 5;
    job.pattern = GenerateTwigQuery(doc, qopts);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

class ConcurrentEvaluatorTest : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentEvaluatorTest, ParallelMatchesSerial) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Fixture f;
  BuildFixture(seed, &f);
  std::vector<QueryJob> jobs = MakeBatch(f.doc, seed);

  const AccessSemantics semantics[] = {
      AccessSemantics::kNone, AccessSemantics::kBinding,
      AccessSemantics::kView};
  for (AccessSemantics sem : semantics) {
    // Serial reference: the existing evaluator, one query at a time.
    QueryEvaluator eval(f.store.get());
    std::vector<std::vector<NodeId>> want;
    for (const QueryJob& job : jobs) {
      EvalOptions opts;
      opts.semantics = sem;
      opts.subject = job.subject;
      auto r = eval.Evaluate(job.pattern, opts);
      ASSERT_TRUE(r.ok()) << r.status();
      want.push_back(r->answers);
    }

    QueryDriverOptions dopts;
    dopts.num_threads = 4;
    dopts.semantics = sem;
    QueryDriver driver(f.store.get(), dopts);
    BatchResult batch = driver.Run(jobs);
    ASSERT_EQ(batch.outcomes.size(), jobs.size());
    EXPECT_EQ(batch.stats.failed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(batch.outcomes[i].status.ok())
          << batch.outcomes[i].status;
      EXPECT_EQ(batch.outcomes[i].result.answers, want[i])
          << "seed " << seed << " query " << i << " semantics "
          << static_cast<int>(sem) << ": "
          << jobs[i].pattern.ToString();
    }

    // The batch-level ExecStats rollup is exactly the sum of the per-query
    // rollups, and the zero-extra-I/O property survives concurrency.
    ExecStats summed;
    for (const QueryOutcome& out : batch.outcomes) {
      if (out.status.ok()) summed += out.result.exec;
    }
    EXPECT_EQ(batch.stats.exec.nodes_scanned, summed.nodes_scanned);
    EXPECT_EQ(batch.stats.exec.codes_checked, summed.codes_checked);
    EXPECT_EQ(batch.stats.exec.checks_elided, summed.checks_elided);
    EXPECT_EQ(batch.stats.exec.pages_skipped, summed.pages_skipped);
    EXPECT_EQ(batch.stats.exec.fetch_waits, summed.fetch_waits);
    EXPECT_EQ(batch.stats.exec.access_only_fetches, 0u);
  }
}

TEST_P(ConcurrentEvaluatorTest, RepeatedRunsAreDeterministic) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Fixture f;
  BuildFixture(seed, &f);
  std::vector<QueryJob> jobs = MakeBatch(f.doc, seed + 1);

  QueryDriverOptions dopts;
  dopts.num_threads = 4;
  dopts.semantics = AccessSemantics::kBinding;
  QueryDriver driver(f.store.get(), dopts);
  BatchResult first = driver.Run(jobs);
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(f.store->nok()->buffer_pool()->EvictAll().ok());
    BatchResult again = driver.Run(jobs);
    for (size_t i = 0; i < jobs.size(); ++i) {
      EXPECT_EQ(again.outcomes[i].result.answers,
                first.outcomes[i].result.answers)
          << "round " << round << " query " << i;
    }
  }
}

TEST_P(ConcurrentEvaluatorTest, ViewsAndReadaheadMatchDirectPath) {
  // The full new query-time machinery at once: per-subject compiled views
  // shared by four workers (first users of a subject race to compile) and
  // background readahead feeding the kView visibility sweeps. Answers must
  // equal the serial, view-off, no-readahead reference.
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Fixture f;
  BuildFixture(seed, &f);
  std::vector<QueryJob> jobs = MakeBatch(f.doc, seed + 2);

  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    QueryEvaluator eval(f.store.get());
    std::vector<std::vector<NodeId>> want;
    for (const QueryJob& job : jobs) {
      EvalOptions opts;
      opts.semantics = sem;
      opts.subject = job.subject;
      opts.use_view = false;
      auto r = eval.Evaluate(job.pattern, opts);
      ASSERT_TRUE(r.ok()) << r.status();
      want.push_back(r->answers);
    }

    // Cold start for the concurrent run: caches dropped, views recompile
    // under contention, sweeps re-run with prefetching.
    f.store->DropVisibilityCaches();
    ASSERT_TRUE(f.store->nok()->buffer_pool()->EvictAll().ok());
    f.store->nok()->SetReadahead(/*window=*/4, /*workers=*/2);
    QueryDriverOptions dopts;
    dopts.num_threads = 4;
    dopts.semantics = sem;
    dopts.use_view = true;
    QueryDriver driver(f.store.get(), dopts);
    BatchResult batch = driver.Run(jobs);
    f.store->nok()->SetReadahead(0, 0);

    ASSERT_EQ(batch.outcomes.size(), jobs.size());
    EXPECT_EQ(batch.stats.failed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(batch.outcomes[i].status.ok()) << batch.outcomes[i].status;
      EXPECT_EQ(batch.outcomes[i].result.answers, want[i])
          << "seed " << seed << " query " << i << " semantics "
          << static_cast<int>(sem) << ": " << jobs[i].pattern.ToString();
    }
  }
}

TEST(ConcurrentEvaluatorTest, SingleThreadDriverEqualsEvaluator) {
  Fixture f;
  BuildFixture(99, &f);
  std::vector<QueryJob> jobs = MakeBatch(f.doc, 99);

  QueryDriverOptions dopts;
  dopts.num_threads = 1;
  dopts.semantics = AccessSemantics::kBinding;
  QueryDriver driver(f.store.get(), dopts);
  BatchResult batch = driver.Run(jobs);

  QueryEvaluator eval(f.store.get());
  for (size_t i = 0; i < jobs.size(); ++i) {
    EvalOptions opts;
    opts.semantics = AccessSemantics::kBinding;
    opts.subject = jobs[i].subject;
    auto r = eval.Evaluate(jobs[i].pattern, opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(batch.outcomes[i].result.answers, r->answers);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentEvaluatorTest,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace secxml
