// Differential test for the subject-compiled access view: evaluating the
// same randomized (subject, query) batch with use_view on and off must
// produce identical answers AND identical pages_skipped accounting, across
// all three access semantics, ordered and unordered matching, and several
// RNG seeds. The view changes the lookup machinery (byte table, compiled
// verdicts, skip index), never what is matched or skipped.
//
// Also the exact-count regression for pages_skipped: a query over a store
// with a known dead-page layout must count each distinct avoided page
// exactly once, no matter how many candidates or siblings fall into it
// (the old accounting incremented once per candidate).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/codebook.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/batch_evaluator.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kNumSubjects = 4;

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildFixture(uint64_t seed, Fixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 500;
  xopts.target_nodes = 2500;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = seed + 900;
  aopts.accessibility_ratio = 0.5;
  IntervalAccessMap map = GenerateSyntheticAclMap(f->doc, kNumSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

class ViewDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ViewDifferentialTest, ViewOnOffIdenticalAnswersAndSkips) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  Fixture f;
  BuildFixture(seed, &f);
  QueryEvaluator eval(f.store.get());

  const AccessSemantics semantics[] = {
      AccessSemantics::kNone, AccessSemantics::kBinding,
      AccessSemantics::kView};
  for (AccessSemantics sem : semantics) {
    for (bool ordered : {false, true}) {
      for (int qi = 0; qi < 30; ++qi) {
        QueryGenOptions qopts;
        qopts.seed = seed * 5000 + static_cast<uint64_t>(qi);
        qopts.max_nodes = 2 + qi % 5;
        PatternTree pattern = GenerateTwigQuery(f.doc, qopts);

        EvalOptions opts;
        opts.semantics = sem;
        opts.subject = static_cast<SubjectId>(qi % kNumSubjects);
        opts.ordered_siblings = ordered;

        auto run = [&](bool use_view, uint64_t* skipped) {
          // Cold cache + fresh counters so both modes are measured alike;
          // the hidden-interval cache is dropped too so kView recomputes
          // its sweep both times.
          f.store->DropVisibilityCaches();
          EXPECT_TRUE(f.store->nok()->buffer_pool()->EvictAll().ok());
          f.store->nok()->buffer_pool()->mutable_stats()->Reset();
          opts.use_view = use_view;
          auto r = eval.Evaluate(pattern, opts);
          *skipped = f.store->io_stats().pages_skipped;
          return r;
        };

        uint64_t skipped_on = 0, skipped_off = 0;
        auto with_view = run(true, &skipped_on);
        auto without_view = run(false, &skipped_off);
        ASSERT_TRUE(with_view.ok()) << with_view.status();
        ASSERT_TRUE(without_view.ok()) << without_view.status();
        EXPECT_EQ(with_view->answers, without_view->answers)
            << "seed " << seed << " query " << qi << " semantics "
            << static_cast<int>(sem) << " ordered " << ordered << ": "
            << pattern.ToString();
        EXPECT_EQ(with_view->fragment_matches, without_view->fragment_matches)
            << pattern.ToString();
        EXPECT_EQ(skipped_on, skipped_off)
            << "pages_skipped accounting diverged on " << pattern.ToString();
        // The per-query ExecStats rollup and the store's IoStats must agree
        // on pages skipped (the sweep operators contribute none; only the
        // scan cursor counts, into both).
        EXPECT_EQ(with_view->exec.pages_skipped, skipped_on)
            << pattern.ToString();
        EXPECT_EQ(without_view->exec.pages_skipped, skipped_off)
            << pattern.ToString();
        // The zero-extra-I/O property, per query.
        EXPECT_EQ(with_view->exec.access_only_fetches, 0u);
        EXPECT_EQ(without_view->exec.access_only_fetches, 0u);
        // Every scanned record was either checked or provably check-free.
        if (sem == AccessSemantics::kNone) {
          EXPECT_EQ(with_view->exec.codes_checked, 0u);
          EXPECT_EQ(with_view->exec.checks_elided, 0u);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Exact-count pages_skipped regression --------------------------------

struct FlatFixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

/// 200 <x/> children under one root, 32 records/page, subject 0 denied the
/// page-aligned node range [32, 128) — pages 1-3 wholly dead, everything
/// else accessible.
void BuildFlatFixture(FlatFixture* f) {
  std::string xml = "<root>";
  for (int i = 0; i < 200; ++i) xml += "<x/>";
  xml += "</root>";
  ASSERT_TRUE(ParseXml(xml, &f->doc).ok());
  ASSERT_EQ(f->doc.NumNodes(), 201u);

  DenseAccessMap map(f->doc.NumNodes(), /*num_subjects=*/1,
                     /*default_access=*/true);
  for (NodeId n = 32; n < 128; ++n) map.Set(0, n, false);
  DolLabeling labeling = DolLabeling::Build(map);
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

uint64_t RunAndCountSkips(FlatFixture* f, const std::string& xpath,
                          bool use_view) {
  QueryEvaluator eval(f->store.get());
  EvalOptions opts;
  opts.semantics = AccessSemantics::kBinding;
  opts.subject = 0;
  opts.use_view = use_view;
  EXPECT_TRUE(f->store->nok()->buffer_pool()->EvictAll().ok());
  f->store->nok()->buffer_pool()->mutable_stats()->Reset();
  auto r = eval.EvaluateXPath(xpath, opts);
  EXPECT_TRUE(r.ok()) << r.status();
  // Every accessible x is an answer: 200 children minus the 96 denied.
  if (r.ok()) EXPECT_EQ(r->answers.size(), 104u);
  // The query's ExecStats rollup counts the same skips as the store.
  if (r.ok()) {
    EXPECT_EQ(r->exec.pages_skipped, f->store->io_stats().pages_skipped);
    EXPECT_EQ(r->exec.access_only_fetches, 0u);
  }
  return f->store->io_stats().pages_skipped;
}

TEST(PagesSkippedExactCountTest, OneIncrementPerDistinctDeadPage) {
  FlatFixture f;
  BuildFlatFixture(&f);

  // Expected: the number of distinct wholly-dead pages holding at least
  // one <x> posting, computed from the store itself.
  uint64_t expected = 0;
  for (size_t p = 0; p < f.store->nok()->num_pages(); ++p) {
    if (f.store->PageWhollyInaccessible(p, 0)) ++expected;
  }
  // The denied range [32, 128) is page-aligned at 32 records/page: three
  // uniform pages, each full of x postings.
  ASSERT_EQ(expected, 3u);

  for (bool use_view : {true, false}) {
    // Unanchored single-node query: only the candidate filter skips. The
    // dead pages hold 96 candidate postings; each page must count once,
    // not once per candidate.
    EXPECT_EQ(RunAndCountSkips(&f, "//x", use_view), expected)
        << "use_view=" << use_view;
    // Anchored child query: the sibling walk skips — the inline verdict
    // check plus SkipToNextSibling's run jump must also count each page
    // exactly once between them.
    EXPECT_EQ(RunAndCountSkips(&f, "/root/x", use_view), expected)
        << "use_view=" << use_view;
  }
}

// --- Wide-batch differential ---------------------------------------------
//
// A batch wider than the old one-word cap (>64 distinct columns) now runs
// as one wide scan. That scan must agree byte-for-byte with (a) per-subject
// Evaluate under BOTH use_view settings, and (b) the legacy chunked layout
// (batch_chunk_classes=64), across binding/view semantics and
// ordered/unordered matching.

TEST(WideBatchDifferentialTest, OneWideScanMatchesViewOnOffAndChunked) {
  constexpr size_t kWide = 72;
  Fixture f;
  XMarkOptions xopts;
  xopts.seed = 4242;
  xopts.target_nodes = 1500;
  ASSERT_TRUE(GenerateXMark(xopts, &f.doc).ok());
  IntervalAccessMap map(static_cast<NodeId>(f.doc.NumNodes()), kWide);
  for (SubjectId s = 0; s < kWide; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = 7000 + s;  // distinct profile per subject
    aopts.accessibility_ratio = 0.55;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f.doc, aopts));
  }
  ASSERT_TRUE(map.Validate().ok());
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  ASSERT_TRUE(
      SecureStore::Build(f.doc, labeling, &f.file, sopts, &f.store).ok());

  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < kWide; ++s) subjects.push_back(s);
  ASSERT_GT(GroupSubjectsByColumn(f.store->codebook(), subjects).size(), 64u);

  BatchEvaluator batch_eval(f.store.get());
  QueryEvaluator eval(f.store.get());
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (bool ordered : {false, true}) {
      for (int qi = 0; qi < 4; ++qi) {
        QueryGenOptions qopts;
        qopts.seed = 8800 + static_cast<uint64_t>(qi);
        qopts.max_nodes = 2 + qi % 4;
        PatternTree pattern = GenerateTwigQuery(f.doc, qopts);

        EvalOptions wide;
        wide.semantics = sem;
        wide.ordered_siblings = ordered;
        auto br = batch_eval.Evaluate(pattern, subjects, wide);
        ASSERT_TRUE(br.ok()) << br.status();

        EvalOptions chunked = wide;
        chunked.batch_chunk_classes = 64;
        auto bc = batch_eval.Evaluate(pattern, subjects, chunked);
        ASSERT_TRUE(bc.ok()) << bc.status();

        for (size_t i = 0; i < subjects.size(); ++i) {
          for (bool use_view : {false, true}) {
            EvalOptions opts = wide;
            opts.subject = subjects[i];
            opts.use_view = use_view;
            auto r = eval.Evaluate(pattern, opts);
            ASSERT_TRUE(r.ok()) << r.status();
            EXPECT_EQ(br->ResultFor(i).answers, r->answers)
                << "subject " << subjects[i] << " use_view " << use_view
                << " semantics " << static_cast<int>(sem) << " ordered "
                << ordered << ": " << pattern.ToString();
          }
          EXPECT_EQ(bc->ResultFor(i).answers, br->ResultFor(i).answers)
              << "chunked diverged for subject " << subjects[i] << ": "
              << pattern.ToString();
        }
      }
    }
  }
}

}  // namespace
}  // namespace secxml
