#include "query/decomposer.h"

#include <gtest/gtest.h>

#include "query/xpath_parser.h"

namespace secxml {
namespace {

DecomposedQuery Decomposed(const std::string& q) {
  PatternTree t;
  EXPECT_TRUE(ParseXPath(q, &t).ok());
  DecomposedQuery d;
  Status s = Decompose(t, &d);
  EXPECT_TRUE(s.ok()) << s;
  return d;
}

TEST(DecomposerTest, PureChildPathIsOneFragment) {
  DecomposedQuery d =
      Decomposed("/site/regions/africa/item[location][name][quantity]");
  ASSERT_EQ(d.fragments.size(), 1u);
  const QueryFragment& f = d.fragments[0];
  EXPECT_TRUE(f.root_anchored);
  EXPECT_EQ(f.tree.nodes.size(), 7u);
  EXPECT_EQ(f.returning_local, 3);
  EXPECT_EQ(d.returning_fragment, 0);
  ASSERT_TRUE(f.tree.Validate().ok());
}

TEST(DecomposerTest, DescendantChainSplits) {
  DecomposedQuery d = Decomposed("//parlist//parlist");
  ASSERT_EQ(d.fragments.size(), 2u);
  EXPECT_FALSE(d.fragments[0].root_anchored);
  EXPECT_EQ(d.fragments[0].tree.nodes.size(), 1u);
  EXPECT_EQ(d.fragments[1].tree.nodes.size(), 1u);
  EXPECT_EQ(d.fragments[1].parent_fragment, 0);
  EXPECT_EQ(d.fragments[1].source_in_parent, 0);
  EXPECT_EQ(d.returning_fragment, 1);
  EXPECT_EQ(d.fragments[1].returning_local, 0);
}

TEST(DecomposerTest, MixedAxesSplitAtDescendantEdges) {
  // /site//item[name]/quantity -> fragment {site}, fragment {item,name,quantity}
  DecomposedQuery d = Decomposed("/site//item[name]/quantity");
  ASSERT_EQ(d.fragments.size(), 2u);
  EXPECT_TRUE(d.fragments[0].root_anchored);
  EXPECT_EQ(d.fragments[0].tree.nodes.size(), 1u);
  const QueryFragment& f1 = d.fragments[1];
  EXPECT_EQ(f1.tree.nodes.size(), 3u);
  EXPECT_EQ(f1.tree.nodes[0].tag, "item");
  EXPECT_EQ(f1.tree.nodes[1].tag, "name");
  EXPECT_EQ(f1.tree.nodes[2].tag, "quantity");
  EXPECT_EQ(f1.returning_local, 2);
  EXPECT_EQ(f1.parent_fragment, 0);
  EXPECT_EQ(f1.source_in_parent, 0);
  ASSERT_TRUE(f1.tree.Validate().ok());
}

TEST(DecomposerTest, DescendantPredicateBranches) {
  // /a[//b]/c: fragment {a, c} plus fragment {b} hanging off a.
  DecomposedQuery d = Decomposed("/a[//b]/c");
  ASSERT_EQ(d.fragments.size(), 2u);
  const QueryFragment& f0 = d.fragments[0];
  ASSERT_EQ(f0.tree.nodes.size(), 2u);
  EXPECT_EQ(f0.tree.nodes[0].tag, "a");
  EXPECT_EQ(f0.tree.nodes[1].tag, "c");
  EXPECT_EQ(f0.returning_local, 1);
  const QueryFragment& f1 = d.fragments[1];
  EXPECT_EQ(f1.tree.nodes[0].tag, "b");
  EXPECT_EQ(f1.parent_fragment, 0);
  EXPECT_EQ(f1.source_in_parent, 0);  // hangs off 'a'
  EXPECT_EQ(d.returning_fragment, 0);
}

TEST(DecomposerTest, FragmentLocalIdsMapBack) {
  DecomposedQuery d = Decomposed("/site//item[name]/quantity");
  const QueryFragment& f1 = d.fragments[1];
  ASSERT_EQ(f1.orig_ids.size(), 3u);
  EXPECT_EQ(f1.orig_ids[0], 1);  // item was pattern node 1
  EXPECT_EQ(f1.orig_ids[1], 2);
  EXPECT_EQ(f1.orig_ids[2], 3);
}

TEST(DecomposerTest, ThreeLevelChain) {
  DecomposedQuery d = Decomposed("//a/b//c//d[e]");
  ASSERT_EQ(d.fragments.size(), 3u);
  EXPECT_EQ(d.fragments[0].tree.nodes.size(), 2u);  // a/b
  EXPECT_EQ(d.fragments[1].tree.nodes.size(), 1u);  // c
  EXPECT_EQ(d.fragments[2].tree.nodes.size(), 2u);  // d[e]
  EXPECT_EQ(d.fragments[1].parent_fragment, 0);
  EXPECT_EQ(d.fragments[1].source_in_parent, 1);    // under b
  EXPECT_EQ(d.fragments[2].parent_fragment, 1);
  EXPECT_EQ(d.returning_fragment, 2);
}

TEST(DecomposerTest, RejectsInvalidPattern) {
  PatternTree t;  // empty
  DecomposedQuery d;
  EXPECT_FALSE(Decompose(t, &d).ok());
}

}  // namespace
}  // namespace secxml
