#include "query/xpath_parser.h"

#include <gtest/gtest.h>

namespace secxml {
namespace {

PatternTree Parse(const std::string& q) {
  PatternTree t;
  Status s = ParseXPath(q, &t);
  EXPECT_TRUE(s.ok()) << q << ": " << s;
  return t;
}

TEST(XPathParserTest, SimplePath) {
  PatternTree t = Parse("/site/regions/africa");
  ASSERT_EQ(t.nodes.size(), 3u);
  EXPECT_EQ(t.nodes[0].tag, "site");
  EXPECT_FALSE(t.nodes[0].descendant_axis);
  EXPECT_EQ(t.nodes[1].tag, "regions");
  EXPECT_EQ(t.nodes[1].parent, 0);
  EXPECT_EQ(t.nodes[2].tag, "africa");
  EXPECT_EQ(t.returning_node, 2);
}

TEST(XPathParserTest, LeadingDescendantAxis) {
  PatternTree t = Parse("//parlist//parlist");
  ASSERT_EQ(t.nodes.size(), 2u);
  EXPECT_TRUE(t.nodes[0].descendant_axis);
  EXPECT_TRUE(t.nodes[1].descendant_axis);
  EXPECT_EQ(t.returning_node, 1);
}

TEST(XPathParserTest, Q1FromTable1) {
  PatternTree t = Parse("/site/regions/africa/item[location][name][quantity]");
  ASSERT_EQ(t.nodes.size(), 7u);
  EXPECT_EQ(t.nodes[3].tag, "item");
  EXPECT_EQ(t.returning_node, 3);  // the trunk tail, not a predicate
  EXPECT_EQ(t.nodes[4].tag, "location");
  EXPECT_EQ(t.nodes[4].parent, 3);
  EXPECT_EQ(t.nodes[5].tag, "name");
  EXPECT_EQ(t.nodes[6].tag, "quantity");
  EXPECT_EQ(t.nodes[3].children.size(), 3u);
}

TEST(XPathParserTest, Q2PredicateThenTrunkContinues) {
  PatternTree t = Parse("/site/categories/category[name]/description/text/bold");
  ASSERT_EQ(t.nodes.size(), 7u);
  EXPECT_EQ(t.nodes[2].tag, "category");
  EXPECT_EQ(t.nodes[3].tag, "name");
  EXPECT_EQ(t.nodes[3].parent, 2);
  EXPECT_EQ(t.nodes[4].tag, "description");
  EXPECT_EQ(t.nodes[4].parent, 2);  // trunk resumes at category
  EXPECT_EQ(t.nodes[6].tag, "bold");
  EXPECT_EQ(t.returning_node, 6);
}

TEST(XPathParserTest, Q3BranchAtEnd) {
  PatternTree t = Parse("/site/categories/category/name[description/text/bold]");
  ASSERT_EQ(t.nodes.size(), 7u);
  EXPECT_EQ(t.nodes[3].tag, "name");
  EXPECT_EQ(t.returning_node, 3);
  EXPECT_EQ(t.nodes[4].tag, "description");
  EXPECT_EQ(t.nodes[4].parent, 3);
  EXPECT_EQ(t.nodes[5].tag, "text");
  EXPECT_EQ(t.nodes[5].parent, 4);
  EXPECT_EQ(t.nodes[6].tag, "bold");
}

TEST(XPathParserTest, DescendantInsidePredicate) {
  PatternTree t = Parse("/a[//b]/c");
  ASSERT_EQ(t.nodes.size(), 3u);
  EXPECT_EQ(t.nodes[1].tag, "b");
  EXPECT_TRUE(t.nodes[1].descendant_axis);
  EXPECT_EQ(t.nodes[2].tag, "c");
  EXPECT_EQ(t.returning_node, 2);
}

TEST(XPathParserTest, ValueConstraint) {
  PatternTree t = Parse("/item[location='africa']/name");
  ASSERT_EQ(t.nodes.size(), 3u);
  EXPECT_TRUE(t.nodes[1].has_value);
  EXPECT_EQ(t.nodes[1].value, "africa");
  EXPECT_FALSE(t.nodes[0].has_value);
}

TEST(XPathParserTest, Wildcard) {
  PatternTree t = Parse("/site/*/item");
  ASSERT_EQ(t.nodes.size(), 3u);
  EXPECT_EQ(t.nodes[1].tag, "*");
}

TEST(XPathParserTest, MixedAxes) {
  PatternTree t = Parse("/site//item/name");
  ASSERT_EQ(t.nodes.size(), 3u);
  EXPECT_FALSE(t.nodes[0].descendant_axis);
  EXPECT_TRUE(t.nodes[1].descendant_axis);
  EXPECT_FALSE(t.nodes[2].descendant_axis);
}

TEST(XPathParserTest, NestedPredicates) {
  PatternTree t = Parse("/a[b[c][d]/e]/f");
  ASSERT_EQ(t.nodes.size(), 6u);
  EXPECT_EQ(t.nodes[0].tag, "a");
  EXPECT_EQ(t.nodes[1].tag, "b");
  EXPECT_EQ(t.nodes[1].parent, 0);
  EXPECT_EQ(t.nodes[2].tag, "c");
  EXPECT_EQ(t.nodes[2].parent, 1);
  EXPECT_EQ(t.nodes[3].tag, "d");
  EXPECT_EQ(t.nodes[3].parent, 1);
  EXPECT_EQ(t.nodes[4].tag, "e");
  EXPECT_EQ(t.nodes[4].parent, 1);
  EXPECT_EQ(t.nodes[5].tag, "f");
  EXPECT_EQ(t.nodes[5].parent, 0);
  EXPECT_EQ(t.returning_node, 5);
  ASSERT_TRUE(t.Validate().ok());
}

TEST(XPathParserTest, NestedPredicateWithDescendantAndValue) {
  PatternTree t = Parse("//item[description[//keyword='x']]/name");
  ASSERT_EQ(t.nodes.size(), 4u);
  EXPECT_EQ(t.nodes[2].tag, "keyword");
  EXPECT_TRUE(t.nodes[2].descendant_axis);
  EXPECT_TRUE(t.nodes[2].has_value);
  EXPECT_EQ(t.nodes[2].value, "x");
  EXPECT_EQ(t.returning_node, 3);
}

TEST(XPathParserTest, RejectsAbsurdNesting) {
  std::string q = "/a";
  for (int i = 0; i < 40; ++i) q += "[a";
  for (int i = 0; i < 40; ++i) q += "]";
  PatternTree t;
  EXPECT_FALSE(ParseXPath(q, &t).ok());
}

TEST(XPathParserTest, RejectsMalformed) {
  PatternTree t;
  EXPECT_FALSE(ParseXPath("", &t).ok());
  EXPECT_FALSE(ParseXPath("site", &t).ok());           // no leading axis
  EXPECT_FALSE(ParseXPath("/", &t).ok());              // no step
  EXPECT_FALSE(ParseXPath("/a[", &t).ok());            // unterminated pred
  EXPECT_FALSE(ParseXPath("/a[b", &t).ok());
  EXPECT_FALSE(ParseXPath("/a[]", &t).ok());           // empty predicate
  EXPECT_FALSE(ParseXPath("/a[b='x]", &t).ok());       // unterminated value
  EXPECT_FALSE(ParseXPath("/a/", &t).ok());            // trailing slash
  EXPECT_FALSE(ParseXPath("/a]b", &t).ok());           // stray bracket
}

TEST(XPathParserTest, ToStringRendersPattern) {
  PatternTree t = Parse("//listitem//keyword");
  EXPECT_EQ(t.ToString(), "//listitem[//keyword$]");
  PatternTree t2 = Parse("/a[b='x']");
  EXPECT_EQ(t2.ToString(), "/a$[/b='x']");
}

TEST(XPathParserTest, ValidateRejectsCorruptTrees) {
  PatternTree t = Parse("/a/b");
  t.nodes[1].parent = 5;
  EXPECT_FALSE(t.Validate().ok());
  PatternTree t2 = Parse("/a/b");
  t2.returning_node = 9;
  EXPECT_FALSE(t2.Validate().ok());
  PatternTree t3;
  EXPECT_FALSE(t3.Validate().ok());
}

}  // namespace
}  // namespace secxml
