// Randomized cross-validation: hundreds of generated twig queries over
// random documents and access controls must agree with the oracle evaluator
// under all three semantics.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "query/xpath_parser.h"
#include "reference_eval.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

class EvaluatorFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EvaluatorFuzzTest, RandomTwigsMatchOracle) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  XMarkOptions xopts;
  xopts.seed = seed + 500;
  xopts.target_nodes = 3000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = seed + 900;
  aopts.accessibility_ratio = 0.6;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, 3, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  MemPagedFile file;
  NokStoreOptions sopts;
  sopts.max_records_per_page = 64;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &file, sopts, &store).ok());
  QueryEvaluator eval(store.get());

  // Accessibility / visibility predicates for the oracle.
  std::vector<bool> accessible(doc.NumNodes()), visible(doc.NumNodes());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    accessible[n] = labeling.Accessible(0, n);
    NodeId p = doc.Parent(n);
    visible[n] = accessible[n] && (p == kInvalidNode || visible[p]);
  }

  constexpr int kQueries = 40;
  for (int qi = 0; qi < kQueries; ++qi) {
    QueryGenOptions qopts;
    qopts.seed = seed * 1000 + static_cast<uint64_t>(qi);
    qopts.max_nodes = 2 + qi % 6;
    PatternTree pattern = GenerateTwigQuery(doc, qopts);
    ASSERT_TRUE(pattern.Validate().ok()) << pattern.ToString();

    struct Case {
      AccessSemantics semantics;
      const std::vector<bool>* filter;
    };
    const Case cases[] = {
        {AccessSemantics::kNone, nullptr},
        {AccessSemantics::kBinding, &accessible},
        {AccessSemantics::kView, &visible},
    };
    for (const Case& c : cases) {
      EvalOptions opts;
      opts.semantics = c.semantics;
      auto got = eval.Evaluate(pattern, opts);
      ASSERT_TRUE(got.ok()) << pattern.ToString() << ": " << got.status();
      auto want = ReferenceEvaluate(
          doc, pattern, [&c](NodeId n) {
            return c.filter == nullptr || (*c.filter)[n];
          });
      ASSERT_EQ(got->answers, want)
          << "query " << qi << " seed " << seed << ": " << pattern.ToString()
          << " semantics " << static_cast<int>(c.semantics);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvaluatorFuzzTest, ::testing::Range(0, 8));

TEST(QueryGeneratorTest, GeneratedQueriesUsuallyHaveMatches) {
  XMarkOptions xopts;
  xopts.target_nodes = 3000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  int with_matches = 0;
  constexpr int kN = 60;
  for (int i = 0; i < kN; ++i) {
    QueryGenOptions qopts;
    qopts.seed = static_cast<uint64_t>(i);
    PatternTree pattern = GenerateTwigQuery(doc, qopts);
    auto answers =
        ReferenceEvaluate(doc, pattern, [](NodeId) { return true; });
    with_matches += answers.empty() ? 0 : 1;
  }
  // Grown along real paths, the bulk of queries must be satisfiable.
  EXPECT_GT(with_matches, kN / 2);
}

TEST(QueryGeneratorTest, Table1QueriesParse) {
  for (const char* q : kTable1Queries) {
    PatternTree t;
    ASSERT_TRUE(ParseXPath(q, &t).ok()) << q;
    ASSERT_TRUE(t.Validate().ok()) << q;
  }
}

}  // namespace
}  // namespace secxml
