// Unit tests for the query layer's cache glue (DESIGN.md §14): the
// injective pattern normalization, the (class fingerprint, query, flags)
// key assembly, the ACL dependency footprint, and EvaluateWithCaches parity
// (a served hit is byte-identical to the live evaluation it replaced, and
// invalidation makes post-update probes miss).

#include "query/query_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cache/result_cache.h"
#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

// Death-test suite: gtest runs *DeathTest suites before everything else,
// which matters here — ResultCacheDisabled latches its env probe on first
// call, so the child process (fork) must check it before any test in this
// binary has latched the un-set state.
TEST(QueryCacheDeathTest, DisableEnvForcesResultCacheOff) {
  EXPECT_EXIT(
      {
        setenv("SECXML_DISABLE_RESULT_CACHE", "1", 1);
        cache::ResultCache rc;
        QueryCaches caches;
        caches.results = &rc;
        std::exit(ResultCacheDisabled() &&
                          caches.ResultsEnabled() == nullptr
                      ? 0
                      : 1);
      },
      ::testing::ExitedWithCode(0), "");
}

PatternTree Parse(const std::string& xpath) {
  PatternTree p;
  EXPECT_TRUE(ParseXPath(xpath, &p).ok()) << xpath;
  return p;
}

TEST(NormalizePatternTest, SlashInTagDoesNotCollideWithStructure) {
  // The debug ToString renders both of these as "/a/b"; the normalized
  // encoding is length-prefixed and must keep them distinct.
  PatternTree slash_tag;
  slash_tag.nodes.emplace_back();
  slash_tag.nodes[0].tag = "a/b";
  PatternTree two_nodes = Parse("/a/b");
  EXPECT_NE(NormalizePattern(slash_tag), NormalizePattern(two_nodes));
}

TEST(NormalizePatternTest, DistinguishesEveryAnswerChangingField) {
  PatternTree base = Parse("/a/b");
  // Identical structure encodes identically (the whole point of a key).
  EXPECT_EQ(NormalizePattern(base), NormalizePattern(Parse("/a/b")));

  PatternTree axis = Parse("/a//b");
  EXPECT_NE(NormalizePattern(base), NormalizePattern(axis));

  PatternTree value = base;
  value.nodes[1].has_value = true;
  value.nodes[1].value = "x";
  EXPECT_NE(NormalizePattern(base), NormalizePattern(value));

  // A present-but-empty value test is not the same query as no value test.
  PatternTree empty_value = base;
  empty_value.nodes[1].has_value = true;
  EXPECT_NE(NormalizePattern(base), NormalizePattern(empty_value));

  PatternTree returning = base;
  returning.returning_node = 0;
  ASSERT_NE(base.returning_node, 0);
  EXPECT_NE(NormalizePattern(base), NormalizePattern(returning));

  // Same tag multiset, different shape: a[b][c] vs a[b/c].
  EXPECT_NE(NormalizePattern(Parse("/a[b]/c")),
            NormalizePattern(Parse("/a/b/c")));
}

TEST(MakeResultKeyTest, EveryFieldReachesTheKey) {
  ColumnFingerprint fp;
  fp.hi = 0xdeadbeef;
  fp.lo = 0x1234;
  cache::ResultKey k =
      MakeResultKey("normq", fp, AccessSemantics::kBinding, true);
  EXPECT_EQ(k.column_hi, 0xdeadbeefu);
  EXPECT_EQ(k.column_lo, 0x1234u);
  EXPECT_EQ(k.query, "normq");
  EXPECT_EQ(k.semantics, static_cast<uint8_t>(AccessSemantics::kBinding));
  EXPECT_TRUE(k.ordered);

  // Any single field difference yields a different key.
  EXPECT_NE(k, MakeResultKey("other", fp, AccessSemantics::kBinding, true));
  EXPECT_NE(k, MakeResultKey("normq", fp, AccessSemantics::kView, true));
  EXPECT_NE(k, MakeResultKey("normq", fp, AccessSemantics::kBinding, false));
  ColumnFingerprint fp2 = fp;
  fp2.lo ^= 1;
  EXPECT_NE(k, MakeResultKey("normq", fp2, AccessSemantics::kBinding, true));
}

/// Tiny hand-built store: tags a/b/c at known positions so footprints can
/// be checked against the actual posting lists.
struct SmallFixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildSmall(SmallFixture* f) {
  ASSERT_TRUE(ParseXml("<root><a>1</a><b><a>2</a><c>3</c></b><a>4</a>"
                       "<c>5</c></root>",
                       &f->doc)
                  .ok());
  NodeId n = static_cast<NodeId>(f->doc.NumNodes());
  DenseAccessMap map(n, 2);
  for (SubjectId s = 0; s < 2; ++s) map.SetSubtree(f->doc, s, 0, true);
  NokStoreOptions sopts;
  sopts.max_records_per_page = 4;
  ASSERT_TRUE(SecureStore::Build(f->doc, DolLabeling::Build(map), &f->file,
                                 sopts, &f->store)
                  .ok());
}

void FootprintOf(SecureStore* store, const std::string& xpath,
                 AccessSemantics sem, uint64_t* begin, uint64_t* end,
                 bool* indep) {
  PreparedQuery pq;
  ASSERT_TRUE(PrepareQuery(Parse(xpath), &pq).ok());
  QueryFootprint(store, pq, sem, begin, end, indep);
}

TEST(QueryFootprintTest, BindingIsThePostingHull) {
  SmallFixture f;
  BuildSmall(&f);
  NokStore* nok = f.store->nok();
  const auto& a = nok->Postings(nok->tags().Lookup("a"));
  const auto& c = nok->Postings(nok->tags().Lookup("c"));
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(c.empty());

  uint64_t begin = 0, end = 0;
  bool indep = true;
  FootprintOf(f.store.get(), "//a", AccessSemantics::kBinding, &begin, &end,
              &indep);
  EXPECT_FALSE(indep);
  EXPECT_EQ(begin, a.front());
  EXPECT_EQ(end, static_cast<uint64_t>(a.back()) + 1);

  // Multiple tags take the hull over all of them.
  FootprintOf(f.store.get(), "//a/c", AccessSemantics::kBinding, &begin,
              &end, &indep);
  EXPECT_FALSE(indep);
  EXPECT_EQ(begin, std::min<uint64_t>(a.front(), c.front()));
  EXPECT_EQ(end, std::max<uint64_t>(a.back(), c.back()) + 1);
}

TEST(QueryFootprintTest, ViewExtendsToDocumentStart) {
  SmallFixture f;
  BuildSmall(&f);
  NokStore* nok = f.store->nok();
  const auto& a = nok->Postings(nok->tags().Lookup("a"));
  uint64_t begin = 99, end = 0;
  bool indep = true;
  // A view-suppressed match root hides under an inaccessible *ancestor*,
  // and ancestors precede the subtree in document order.
  FootprintOf(f.store.get(), "//a", AccessSemantics::kView, &begin, &end,
              &indep);
  EXPECT_FALSE(indep);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, static_cast<uint64_t>(a.back()) + 1);
}

TEST(QueryFootprintTest, WildcardCoversTheWholeDocument) {
  SmallFixture f;
  BuildSmall(&f);
  uint64_t begin = 99, end = 0;
  bool indep = true;
  FootprintOf(f.store.get(), "//*", AccessSemantics::kBinding, &begin, &end,
              &indep);
  EXPECT_FALSE(indep);
  EXPECT_EQ(begin, 0u);
  EXPECT_EQ(end, f.store->nok()->num_nodes());
}

TEST(QueryFootprintTest, AbsentTagAndNoneSemanticsAreAclIndependent) {
  SmallFixture f;
  BuildSmall(&f);
  uint64_t begin = 0, end = 0;
  bool indep = false;
  // No node carries the tag: the answer is empty under every ACL.
  FootprintOf(f.store.get(), "//nosuchtag", AccessSemantics::kBinding,
              &begin, &end, &indep);
  EXPECT_TRUE(indep);
  indep = false;
  FootprintOf(f.store.get(), "//a", AccessSemantics::kNone, &begin, &end,
              &indep);
  EXPECT_TRUE(indep);
}

/// XMark fixture with column-equal subjects (profiles), as in
/// batch_eval_test: subjects s and s + kProfiles share a codebook column.
struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildFixture(uint64_t seed, size_t num_subjects, size_t num_profiles,
                  Fixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 900;
  xopts.target_nodes = 1500;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  IntervalAccessMap map(static_cast<NodeId>(f->doc.NumNodes()), num_subjects);
  for (SubjectId s = 0; s < num_subjects; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = seed * 100 + s % num_profiles;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f->doc, aopts));
  }
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

struct CacheRig {
  cache::ResultCache results;
  QueryPlanCache plans;
  QueryCaches caches;
  explicit CacheRig(SecureStore* store) {
    caches.results = &results;
    caches.plans = &plans;
    AttachResultCacheInvalidation(store, &results);
  }
};

TEST(EvaluateWithCachesTest, HitIsByteIdenticalToLiveEvaluation) {
  if (ResultCacheDisabled()) {
    GTEST_SKIP() << "hit/miss behavior is the subject under test; the "
                    "disabled-cache leg covers parity via the differential "
                    "suite instead";
  }
  Fixture f;
  BuildFixture(3, /*num_subjects=*/6, /*num_profiles=*/3, &f);
  CacheRig rig(f.store.get());
  QueryEvaluator eval(f.store.get());
  QueryEvaluator plain(f.store.get());

  for (int qi = 0; qi < 3; ++qi) {
    QueryGenOptions qopts;
    qopts.seed = 400 + static_cast<uint64_t>(qi);
    qopts.max_nodes = 3;
    PatternTree q = GenerateTwigQuery(f.doc, qopts);
    for (SubjectId s = 0; s < 3; ++s) {
      EvalOptions opts;
      opts.semantics = AccessSemantics::kBinding;
      opts.subject = s;
      auto miss = EvaluateWithCaches(f.store.get(), &eval, q, opts,
                                     rig.caches);
      ASSERT_TRUE(miss.ok()) << miss.status();
      EXPECT_EQ(miss->exec.result_cache_misses, 1u);
      EXPECT_EQ(miss->exec.result_cache_hits, 0u);

      auto hit = EvaluateWithCaches(f.store.get(), &eval, q, opts,
                                    rig.caches);
      ASSERT_TRUE(hit.ok()) << hit.status();
      EXPECT_EQ(hit->exec.result_cache_hits, 1u);
      // A hit does none of the saved work.
      EXPECT_EQ(hit->exec.nodes_scanned, 0u);
      EXPECT_EQ(hit->exec.codes_checked, 0u);

      auto live = plain.Evaluate(q, opts);
      ASSERT_TRUE(live.ok());
      EXPECT_EQ(miss->answers, live->answers);
      EXPECT_EQ(hit->answers, live->answers);
      EXPECT_EQ(hit->fragment_matches, live->fragment_matches);

      // Column-equal subject (s + 3 draws the same ACL profile): its first
      // probe is already a hit — the key is the class, not the subject id.
      EvalOptions twin = opts;
      twin.subject = s + 3;
      auto shared = EvaluateWithCaches(f.store.get(), &eval, q, twin,
                                       rig.caches);
      ASSERT_TRUE(shared.ok());
      EXPECT_EQ(shared->exec.result_cache_hits, 1u);
      auto twin_live = plain.Evaluate(q, twin);
      ASSERT_TRUE(twin_live.ok());
      EXPECT_EQ(shared->answers, twin_live->answers);
    }
  }
  // Plans resolved once per distinct pattern, not once per evaluation.
  EXPECT_LE(rig.plans.entries(), 3u);
  EXPECT_GT(rig.plans.hits(), 0u);
}

TEST(EvaluateWithCachesTest, CommitsInvalidatePreciselyAndServeFresh) {
  if (ResultCacheDisabled()) {
    GTEST_SKIP() << "invalidation behavior requires a live result cache";
  }
  Fixture f;
  BuildFixture(5, /*num_subjects=*/4, /*num_profiles=*/4, &f);
  CacheRig rig(f.store.get());
  QueryEvaluator eval(f.store.get());
  QueryEvaluator plain(f.store.get());

  // A fixed XMark query whose tags certainly exist, so the footprint is a
  // real range (GenerateTwigQuery could land on an acl-independent shape).
  PatternTree q = Parse("//item/name");
  EvalOptions opts;
  opts.semantics = AccessSemantics::kBinding;
  opts.subject = 1;

  PreparedQuery pq;
  ASSERT_TRUE(PrepareQuery(q, &pq).ok());
  uint64_t fp_begin = 0, fp_end = 0;
  bool indep = false;
  QueryFootprint(f.store.get(), pq, opts.semantics, &fp_begin, &fp_end,
                 &indep);
  ASSERT_FALSE(indep);

  auto warm = [&]() {
    auto r = EvaluateWithCaches(f.store.get(), &eval, q, opts, rig.caches);
    ASSERT_TRUE(r.ok()) << r.status();
  };
  auto probe_hits = [&]() -> bool {
    auto r = EvaluateWithCaches(f.store.get(), &eval, q, opts, rig.caches);
    EXPECT_TRUE(r.ok()) << r.status();
    auto live = plain.Evaluate(q, opts);
    EXPECT_TRUE(live.ok());
    EXPECT_EQ(r->answers, live->answers);  // hit or miss, always fresh
    return r->exec.result_cache_hits == 1;
  };

  warm();
  ASSERT_TRUE(probe_hits());

  // An ACL patch inside the footprint erases the entry: next probe misses
  // and re-evaluates against the new snapshot.
  NodeId mid = static_cast<NodeId>((fp_begin + fp_end) / 2);
  ASSERT_TRUE(f.store->SetRangeAccess(mid, mid + 1, 1, false).ok());
  EXPECT_FALSE(probe_hits());
  EXPECT_TRUE(probe_hits());

  // An ACL patch *outside* the footprint leaves the entry alone.
  if (fp_end < f.store->num_nodes()) {
    ASSERT_TRUE(f.store
                    ->SetRangeAccess(static_cast<NodeId>(fp_end),
                                     f.store->num_nodes(), 0, true)
                    .ok());
    EXPECT_TRUE(probe_hits());
  }

  // Adding a subject is a no-op for existing columns and answers.
  ASSERT_TRUE(f.store->AddSubject(false).ok());
  EXPECT_TRUE(probe_hits());

  // A structural update flushes everything.
  NodeId victim = 1;
  while (f.doc.SubtreeSize(victim) < 5) ++victim;
  ASSERT_TRUE(f.store->DeleteSubtree(victim).ok());
  EXPECT_FALSE(probe_hits());
  EXPECT_TRUE(probe_hits());
  EXPECT_GE(rig.results.stats().flushes, 1u);
}

TEST(EvaluateWithCachesTest, NullCachesDegenerateToPlainEvaluate) {
  Fixture f;
  BuildFixture(7, /*num_subjects=*/2, /*num_profiles=*/2, &f);
  QueryEvaluator eval(f.store.get());
  QueryEvaluator plain(f.store.get());
  QueryGenOptions qopts;
  qopts.seed = 55;
  qopts.max_nodes = 3;
  PatternTree q = GenerateTwigQuery(f.doc, qopts);
  EvalOptions opts;
  opts.semantics = AccessSemantics::kView;
  opts.subject = 0;
  auto r = EvaluateWithCaches(f.store.get(), &eval, q, opts, QueryCaches{});
  auto want = plain.Evaluate(q, opts);
  ASSERT_TRUE(r.ok() && want.ok());
  EXPECT_EQ(r->answers, want->answers);
  EXPECT_EQ(r->exec.result_cache_hits, 0u);
  EXPECT_EQ(r->exec.result_cache_misses, 0u);
}

}  // namespace
}  // namespace secxml
