#include "xml/xml_parser.h"

#include <gtest/gtest.h>

namespace secxml {
namespace {

TEST(XmlParserTest, SingleElement) {
  Document doc;
  ASSERT_TRUE(ParseXml("<root/>", &doc).ok());
  ASSERT_EQ(doc.NumNodes(), 1u);
  EXPECT_EQ(doc.TagName(0), "root");
}

TEST(XmlParserTest, NestedElements) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c/></b><d/></a>", &doc).ok());
  ASSERT_EQ(doc.NumNodes(), 4u);
  EXPECT_EQ(doc.TagName(0), "a");
  EXPECT_EQ(doc.TagName(1), "b");
  EXPECT_EQ(doc.TagName(2), "c");
  EXPECT_EQ(doc.TagName(3), "d");
  EXPECT_EQ(doc.Parent(2), 1u);
  EXPECT_EQ(doc.Parent(3), 0u);
}

TEST(XmlParserTest, TextContent) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a>hello <b>bold</b> world</a>", &doc).ok());
  EXPECT_EQ(doc.Value(0), "hello  world");
  EXPECT_EQ(doc.Value(1), "bold");
}

TEST(XmlParserTest, EntitiesDecoded) {
  Document doc;
  ASSERT_TRUE(
      ParseXml("<a>&lt;tag&gt; &amp; &quot;q&quot; &apos;s&apos;</a>", &doc)
          .ok());
  EXPECT_EQ(doc.Value(0), "<tag> & \"q\" 's'");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a>&#65;&#x42;</a>", &doc).ok());
  EXPECT_EQ(doc.Value(0), "AB");
}

TEST(XmlParserTest, AttributesBecomeAttributeChildren) {
  Document doc;
  ASSERT_TRUE(ParseXml(R"(<item id="7" cat="a&amp;b"><name/></item>)", &doc).ok());
  ASSERT_EQ(doc.NumNodes(), 4u);
  EXPECT_EQ(doc.TagName(1), "@id");
  EXPECT_EQ(doc.Value(1), "7");
  EXPECT_EQ(doc.TagName(2), "@cat");
  EXPECT_EQ(doc.Value(2), "a&b");
  EXPECT_EQ(doc.TagName(3), "name");
}

TEST(XmlParserTest, CommentsAndPIsSkipped) {
  Document doc;
  ASSERT_TRUE(ParseXml("<?xml version=\"1.0\"?><!-- hi --><a><!-- x --><b/></a>",
                       &doc)
                  .ok());
  ASSERT_EQ(doc.NumNodes(), 2u);
}

TEST(XmlParserTest, DoctypeSkipped) {
  Document doc;
  ASSERT_TRUE(ParseXml("<!DOCTYPE site><site/>", &doc).ok());
  EXPECT_EQ(doc.TagName(0), "site");
}

TEST(XmlParserTest, CdataPreserved) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><![CDATA[<raw> & text]]></a>", &doc).ok());
  EXPECT_EQ(doc.Value(0), "<raw> & text");
}

TEST(XmlParserTest, WhitespaceBetweenElementsIgnored) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a>\n  <b/>\n  <c/>\n</a>", &doc).ok());
  ASSERT_EQ(doc.NumNodes(), 3u);
  EXPECT_FALSE(doc.HasValue(0));
}

TEST(XmlParserTest, RejectsMalformedInput) {
  Document doc;
  EXPECT_FALSE(ParseXml("<a><b></a></b>", &doc).ok());  // bad nesting arity ok
  EXPECT_FALSE(ParseXml("<a>", &doc).ok());             // unclosed
  EXPECT_FALSE(ParseXml("<a/><b/>", &doc).ok());        // two roots
  EXPECT_FALSE(ParseXml("text only", &doc).ok());       // no root
  EXPECT_FALSE(ParseXml("<a attr></a>", &doc).ok());    // attr without value
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>", &doc).ok());  // unknown entity
  EXPECT_FALSE(ParseXml("<a><!-- unterminated</a>", &doc).ok());
}

TEST(XmlParserTest, MismatchedCloseCountsCaught) {
  Document doc;
  // One extra close tag.
  EXPECT_FALSE(ParseXml("<a><b/></a></a>", &doc).ok());
}

TEST(XmlParserTest, DeeplyNestedDocument) {
  std::string input;
  constexpr int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) input += "<n>";
  for (int i = 0; i < kDepth; ++i) input += "</n>";
  Document doc;
  ASSERT_TRUE(ParseXml(input, &doc).ok());
  EXPECT_EQ(doc.NumNodes(), static_cast<size_t>(kDepth));
  EXPECT_EQ(doc.MaxDepth(), kDepth - 1);
}

TEST(XmlParserTest, ErrorMessagesIncludeLineNumbers) {
  Document doc;
  Status s = ParseXml("<a>\n<b>\n&oops;</b></a>", &doc);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace secxml
