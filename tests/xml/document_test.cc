#include "xml/document.h"

#include <gtest/gtest.h>

namespace secxml {
namespace {

// Builds the data tree from Figure 2 of the paper:
// (a (b) (c) (d) (e (f) (g) (h (i) (j) (k) (l))))
Document BuildFigure2Tree() {
  DocumentBuilder b;
  b.BeginElement("a");
  b.BeginElement("b");
  EXPECT_TRUE(b.EndElement().ok());
  b.BeginElement("c");
  EXPECT_TRUE(b.EndElement().ok());
  b.BeginElement("d");
  EXPECT_TRUE(b.EndElement().ok());
  b.BeginElement("e");
  b.BeginElement("f");
  EXPECT_TRUE(b.EndElement().ok());
  b.BeginElement("g");
  EXPECT_TRUE(b.EndElement().ok());
  b.BeginElement("h");
  for (const char* t : {"i", "j", "k", "l"}) {
    b.BeginElement(t);
    EXPECT_TRUE(b.EndElement().ok());
  }
  EXPECT_TRUE(b.EndElement().ok());  // h
  EXPECT_TRUE(b.EndElement().ok());  // e
  EXPECT_TRUE(b.EndElement().ok());  // a
  Document doc;
  EXPECT_TRUE(b.Finish(&doc).ok());
  return doc;
}

TEST(DocumentTest, Figure2TreeShape) {
  Document doc = BuildFigure2Tree();
  ASSERT_EQ(doc.NumNodes(), 12u);
  // Document order: a b c d e f g h i j k l
  EXPECT_EQ(doc.TagName(0), "a");
  EXPECT_EQ(doc.TagName(1), "b");
  EXPECT_EQ(doc.TagName(4), "e");
  EXPECT_EQ(doc.TagName(7), "h");
  EXPECT_EQ(doc.TagName(11), "l");

  EXPECT_EQ(doc.SubtreeSize(0), 12u);
  EXPECT_EQ(doc.SubtreeSize(4), 8u);   // e subtree: e f g h i j k l
  EXPECT_EQ(doc.SubtreeSize(7), 5u);   // h subtree: h i j k l
  EXPECT_EQ(doc.SubtreeSize(1), 1u);   // b is a leaf
}

TEST(DocumentTest, ParentsAndDepths) {
  Document doc = BuildFigure2Tree();
  EXPECT_EQ(doc.Parent(0), kInvalidNode);
  EXPECT_EQ(doc.Parent(1), 0u);
  EXPECT_EQ(doc.Parent(5), 4u);   // f's parent is e
  EXPECT_EQ(doc.Parent(8), 7u);   // i's parent is h
  EXPECT_EQ(doc.Depth(0), 0);
  EXPECT_EQ(doc.Depth(4), 1);
  EXPECT_EQ(doc.Depth(7), 2);
  EXPECT_EQ(doc.Depth(8), 3);
  EXPECT_EQ(doc.MaxDepth(), 3);
  EXPECT_NEAR(doc.AvgDepth(), (0 + 1 * 4 + 2 * 3 + 3 * 4) / 12.0, 1e-9);
}

TEST(DocumentTest, FirstChildAndNextSibling) {
  Document doc = BuildFigure2Tree();
  EXPECT_EQ(doc.FirstChild(0), 1u);             // a -> b
  EXPECT_EQ(doc.FirstChild(1), kInvalidNode);   // b is a leaf
  EXPECT_EQ(doc.FirstChild(4), 5u);             // e -> f
  EXPECT_EQ(doc.NextSibling(1), 2u);            // b -> c
  EXPECT_EQ(doc.NextSibling(3), 4u);            // d -> e
  EXPECT_EQ(doc.NextSibling(4), kInvalidNode);  // e is last child of a
  EXPECT_EQ(doc.NextSibling(6), 7u);            // g -> h
  EXPECT_EQ(doc.NextSibling(11), kInvalidNode); // l is last child of h
  EXPECT_EQ(doc.NextSibling(0), kInvalidNode);  // root has no sibling
}

TEST(DocumentTest, SiblingIterationVisitsAllChildren) {
  Document doc = BuildFigure2Tree();
  std::vector<std::string> tags;
  for (NodeId c = doc.FirstChild(7); c != kInvalidNode; c = doc.NextSibling(c)) {
    tags.push_back(doc.TagName(c));
  }
  EXPECT_EQ(tags, (std::vector<std::string>{"i", "j", "k", "l"}));
}

TEST(DocumentTest, IsAncestor) {
  Document doc = BuildFigure2Tree();
  EXPECT_TRUE(doc.IsAncestor(0, 11));
  EXPECT_TRUE(doc.IsAncestor(4, 7));
  EXPECT_TRUE(doc.IsAncestor(7, 9));
  EXPECT_FALSE(doc.IsAncestor(7, 4));
  EXPECT_FALSE(doc.IsAncestor(1, 2));  // siblings
  EXPECT_FALSE(doc.IsAncestor(3, 3));  // not a proper ancestor of itself
  EXPECT_FALSE(doc.IsAncestor(4, 3));  // d precedes e
}

TEST(DocumentTest, SubtreeEndIsPreorderInterval) {
  Document doc = BuildFigure2Tree();
  EXPECT_EQ(doc.SubtreeEnd(4), 12u);
  EXPECT_EQ(doc.SubtreeEnd(7), 12u);
  EXPECT_EQ(doc.SubtreeEnd(1), 2u);
  // Every descendant of e falls in [4, 12).
  for (NodeId n = 5; n < 12; ++n) EXPECT_TRUE(doc.IsAncestor(4, n));
}

TEST(DocumentTest, ValuesAttachToElements) {
  DocumentBuilder b;
  b.BeginElement("root");
  ASSERT_TRUE(b.Text("hello ").ok());
  b.BeginElement("child");
  ASSERT_TRUE(b.Text("inner").ok());
  ASSERT_TRUE(b.EndElement().ok());
  ASSERT_TRUE(b.Text("world").ok());
  ASSERT_TRUE(b.EndElement().ok());
  Document doc;
  ASSERT_TRUE(b.Finish(&doc).ok());
  EXPECT_EQ(doc.Value(0), "hello world");
  EXPECT_EQ(doc.Value(1), "inner");
  EXPECT_TRUE(doc.HasValue(0));
}

TEST(DocumentTest, EmptyValueIsDistinctFromNoValue) {
  DocumentBuilder b;
  b.BeginElement("root");
  ASSERT_TRUE(b.EndElement().ok());
  Document doc;
  ASSERT_TRUE(b.Finish(&doc).ok());
  EXPECT_FALSE(doc.HasValue(0));
  EXPECT_EQ(doc.Value(0), "");
}

TEST(DocumentBuilderTest, ErrorsOnMisuse) {
  {
    DocumentBuilder b;
    EXPECT_FALSE(b.EndElement().ok());  // nothing open
  }
  {
    DocumentBuilder b;
    EXPECT_FALSE(b.Text("x").ok());  // text before root
  }
  {
    DocumentBuilder b;
    b.BeginElement("a");
    Document doc;
    EXPECT_FALSE(b.Finish(&doc).ok());  // unclosed element
  }
  {
    DocumentBuilder b;
    Document doc;
    EXPECT_FALSE(b.Finish(&doc).ok());  // empty document
  }
}

TEST(DocumentBuilderTest, TagDictionaryInternsOnce) {
  DocumentBuilder b;
  b.BeginElement("x");
  b.BeginElement("y");
  ASSERT_TRUE(b.EndElement().ok());
  b.BeginElement("y");
  ASSERT_TRUE(b.EndElement().ok());
  ASSERT_TRUE(b.EndElement().ok());
  Document doc;
  ASSERT_TRUE(b.Finish(&doc).ok());
  EXPECT_EQ(doc.tags().size(), 2u);
  EXPECT_EQ(doc.Tag(1), doc.Tag(2));
  EXPECT_EQ(doc.tags().Lookup("y"), doc.Tag(1));
  EXPECT_EQ(doc.tags().Lookup("zzz"), kInvalidTag);
}

}  // namespace
}  // namespace secxml
