#include "xml/xmark_generator.h"

#include <gtest/gtest.h>

#include <set>

namespace secxml {
namespace {

Document Generate(uint32_t target, uint64_t seed = 42) {
  XMarkOptions opts;
  opts.seed = seed;
  opts.target_nodes = target;
  Document doc;
  EXPECT_TRUE(GenerateXMark(opts, &doc).ok());
  return doc;
}

TEST(XMarkGeneratorTest, HitsTargetSizeApproximately) {
  for (uint32_t target : {5000u, 20000u, 60000u}) {
    Document doc = Generate(target);
    EXPECT_GT(doc.NumNodes(), target * 0.9) << target;
    EXPECT_LT(doc.NumNodes(), target * 1.15) << target;
  }
}

TEST(XMarkGeneratorTest, DeterministicInSeed) {
  Document a = Generate(8000, 7);
  Document b = Generate(8000, 7);
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  for (NodeId n = 0; n < a.NumNodes(); ++n) {
    ASSERT_EQ(a.TagName(n), b.TagName(n));
    ASSERT_EQ(a.SubtreeSize(n), b.SubtreeSize(n));
    ASSERT_EQ(a.Value(n), b.Value(n));
  }
  Document c = Generate(8000, 8);
  EXPECT_NE(c.NumNodes(), a.NumNodes());
}

TEST(XMarkGeneratorTest, TopLevelStructure) {
  Document doc = Generate(10000);
  EXPECT_EQ(doc.TagName(0), "site");
  std::vector<std::string> sections;
  for (NodeId c = doc.FirstChild(0); c != kInvalidNode; c = doc.NextSibling(c)) {
    sections.push_back(doc.TagName(c));
  }
  EXPECT_EQ(sections,
            (std::vector<std::string>{"regions", "categories", "people",
                                      "open_auctions", "closed_auctions"}));
}

TEST(XMarkGeneratorTest, AllSixRegionsPresent) {
  Document doc = Generate(20000);
  NodeId regions = doc.FirstChild(0);
  std::set<std::string> names;
  for (NodeId c = doc.FirstChild(regions); c != kInvalidNode;
       c = doc.NextSibling(c)) {
    names.insert(doc.TagName(c));
  }
  EXPECT_EQ(names, (std::set<std::string>{"africa", "asia", "australia",
                                          "europe", "namerica", "samerica"}));
}

// Counts nodes whose tag matches, anywhere in the document.
size_t CountTag(const Document& doc, const std::string& tag) {
  TagId id = doc.tags().Lookup(tag);
  if (id == kInvalidTag) return 0;
  size_t count = 0;
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (doc.Tag(n) == id) ++count;
  }
  return count;
}

TEST(XMarkGeneratorTest, QueryRelevantVocabularyExists) {
  Document doc = Generate(30000);
  // Tags needed by Table 1 queries Q1-Q6.
  for (const char* tag :
       {"item", "location", "name", "quantity", "category", "description",
        "text", "bold", "parlist", "listitem", "keyword", "emph"}) {
    EXPECT_GT(CountTag(doc, tag), 0u) << tag;
  }
}

TEST(XMarkGeneratorTest, ItemsHaveRequiredChildren) {
  Document doc = Generate(15000);
  TagId item = doc.tags().Lookup("item");
  ASSERT_NE(item, kInvalidTag);
  int items_checked = 0;
  for (NodeId n = 0; n < doc.NumNodes() && items_checked < 50; ++n) {
    if (doc.Tag(n) != item) continue;
    ++items_checked;
    std::set<std::string> child_tags;
    for (NodeId c = doc.FirstChild(n); c != kInvalidNode;
         c = doc.NextSibling(c)) {
      child_tags.insert(doc.TagName(c));
    }
    EXPECT_TRUE(child_tags.count("location")) << n;
    EXPECT_TRUE(child_tags.count("name")) << n;
    EXPECT_TRUE(child_tags.count("quantity")) << n;
    EXPECT_TRUE(child_tags.count("description")) << n;
  }
  EXPECT_GT(items_checked, 0);
}

TEST(XMarkGeneratorTest, NestedParlistsExist) {
  Document doc = Generate(30000);
  TagId parlist = doc.tags().Lookup("parlist");
  ASSERT_NE(parlist, kInvalidTag);
  // Q4 = //parlist//parlist must have matches: find a parlist with a parlist
  // descendant.
  bool found = false;
  for (NodeId n = 0; n < doc.NumNodes() && !found; ++n) {
    if (doc.Tag(n) != parlist) continue;
    for (NodeId d = n + 1; d < doc.SubtreeEnd(n); ++d) {
      if (doc.Tag(d) == parlist) {
        found = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST(XMarkGeneratorTest, RegionShareRoughlyFollowsXMark) {
  Document doc = Generate(60000);
  NodeId regions = doc.FirstChild(0);
  size_t total_items = CountTag(doc, "item");
  ASSERT_GT(total_items, 100u);
  // Find africa and europe subtree item counts.
  size_t africa_items = 0, europe_items = 0;
  TagId item = doc.tags().Lookup("item");
  for (NodeId c = doc.FirstChild(regions); c != kInvalidNode;
       c = doc.NextSibling(c)) {
    size_t count = 0;
    for (NodeId d = c + 1; d < doc.SubtreeEnd(c); ++d) {
      if (doc.Tag(d) == item) ++count;
    }
    if (doc.TagName(c) == "africa") africa_items = count;
    if (doc.TagName(c) == "europe") europe_items = count;
  }
  // Africa is a small region (~2.5% of items), Europe a large one (~30%).
  EXPECT_LT(africa_items, europe_items);
  EXPECT_LT(static_cast<double>(africa_items) / total_items, 0.10);
  EXPECT_GT(static_cast<double>(europe_items) / total_items, 0.15);
}

TEST(XMarkGeneratorTest, RejectsZeroTarget) {
  XMarkOptions opts;
  opts.target_nodes = 0;
  Document doc;
  EXPECT_FALSE(GenerateXMark(opts, &doc).ok());
}

TEST(XMarkGeneratorTest, ParlistDepthBounded) {
  XMarkOptions opts;
  opts.target_nodes = 30000;
  opts.max_parlist_depth = 2;
  Document doc;
  ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
  TagId parlist = doc.tags().Lookup("parlist");
  // Count the deepest chain of nested parlists.
  int max_chain = 0;
  std::vector<int> chain(doc.NumNodes(), 0);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (doc.Tag(n) != parlist) continue;
    int depth = 1;
    for (NodeId a = doc.Parent(n); a != kInvalidNode; a = doc.Parent(a)) {
      if (doc.Tag(a) == parlist) {
        depth = chain[a] + 1;
        break;
      }
    }
    chain[n] = depth;
    max_chain = std::max(max_chain, depth);
  }
  EXPECT_LE(max_chain, 2);
  EXPECT_GE(max_chain, 2);  // recursion does occur
}

}  // namespace
}  // namespace secxml
