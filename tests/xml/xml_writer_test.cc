#include "xml/xml_writer.h"

#include <gtest/gtest.h>

#include "xml/xml_parser.h"

namespace secxml {
namespace {

TEST(XmlWriterTest, RoundTripSimple) {
  const std::string input = "<a><b>hi</b><c/></a>";
  Document doc;
  ASSERT_TRUE(ParseXml(input, &doc).ok());
  EXPECT_EQ(WriteXml(doc), input);
}

TEST(XmlWriterTest, AttributesRestored) {
  const std::string input = R"(<item id="7"><name>x</name></item>)";
  Document doc;
  ASSERT_TRUE(ParseXml(input, &doc).ok());
  EXPECT_EQ(WriteXml(doc), input);
}

TEST(XmlWriterTest, SpecialCharactersEscaped) {
  DocumentBuilder b;
  b.BeginElement("a");
  ASSERT_TRUE(b.Text("x < y & z").ok());
  ASSERT_TRUE(b.EndElement().ok());
  Document doc;
  ASSERT_TRUE(b.Finish(&doc).ok());
  EXPECT_EQ(WriteXml(doc), "<a>x &lt; y &amp; z</a>");
}

TEST(XmlWriterTest, RoundTripPreservesStructure) {
  const std::string input =
      R"(<site><regions><africa><item id="1"><name>n</name></item></africa>)"
      R"(</regions><people/></site>)";
  Document doc;
  ASSERT_TRUE(ParseXml(input, &doc).ok());
  std::string emitted = WriteXml(doc);
  Document doc2;
  ASSERT_TRUE(ParseXml(emitted, &doc2).ok());
  ASSERT_EQ(doc2.NumNodes(), doc.NumNodes());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    EXPECT_EQ(doc2.TagName(n), doc.TagName(n));
    EXPECT_EQ(doc2.SubtreeSize(n), doc.SubtreeSize(n));
    EXPECT_EQ(doc2.Value(n), doc.Value(n));
  }
}

TEST(XmlWriterTest, SubtreeSerialization) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c>x</c></b><d/></a>", &doc).ok());
  EXPECT_EQ(WriteXml(doc, /*root=*/1), "<b><c>x</c></b>");
  EXPECT_EQ(WriteXml(doc, /*root=*/3), "<d/>");
}

TEST(XmlWriterTest, PrettyPrinting) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/><c/></a>", &doc).ok());
  XmlWriteOptions opts;
  opts.pretty = true;
  EXPECT_EQ(WriteXml(doc, 0, opts), "<a>\n  <b/>\n  <c/>\n</a>");
}

TEST(XmlWriterTest, FilteredOmitsSubtrees) {
  Document doc;
  // a(b(c) d(e))
  ASSERT_TRUE(ParseXml("<a><b><c/></b><d><e/></d></a>", &doc).ok());
  // Hide b (node 1): its whole subtree disappears even though c is "visible".
  auto visible = [](NodeId n) { return n != 1; };
  EXPECT_EQ(WriteXmlFiltered(doc, visible), "<a><d><e/></d></a>");
}

TEST(XmlWriterTest, FilteredHiddenRootYieldsEmpty) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/></a>", &doc).ok());
  auto visible = [](NodeId n) { return n != 0; };
  EXPECT_EQ(WriteXmlFiltered(doc, visible), "");
}

TEST(XmlWriterTest, OutOfRangeRootYieldsEmpty) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a/>", &doc).ok());
  EXPECT_EQ(WriteXml(doc, 5), "");
}

}  // namespace
}  // namespace secxml
