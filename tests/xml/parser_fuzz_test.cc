// Robustness tests for the XML parser: random garbage, random mutations of
// valid documents, and generator round-trips must never crash, hang, or
// violate parser invariants — every input either parses into a well-formed
// Document or returns a clean Status.

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

/// Structural sanity of any successfully parsed document.
void ExpectWellFormed(const Document& doc) {
  ASSERT_GT(doc.NumNodes(), 0u);
  ASSERT_EQ(doc.SubtreeSize(0), doc.NumNodes());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    ASSERT_GE(doc.SubtreeSize(n), 1u);
    ASSERT_LE(n + doc.SubtreeSize(n), doc.NumNodes());
    NodeId p = doc.Parent(n);
    if (n == 0) {
      ASSERT_EQ(p, kInvalidNode);
    } else {
      ASSERT_LT(p, n);
      ASSERT_TRUE(doc.IsAncestor(p, n));
      ASSERT_EQ(doc.Depth(n), doc.Depth(p) + 1);
    }
  }
}

TEST(ParserFuzzTest, RandomGarbageNeverCrashes) {
  Rng rng(1);
  const char alphabet[] = "<>/=\"'abc& ;![]-?x\n\t";
  for (int round = 0; round < 3000; ++round) {
    std::string input;
    size_t len = rng.Uniform(80);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[rng.Uniform(sizeof(alphabet) - 1)]);
    }
    Document doc;
    Status st = ParseXml(input, &doc);
    if (st.ok()) ExpectWellFormed(doc);
  }
}

TEST(ParserFuzzTest, MutatedValidDocuments) {
  XMarkOptions opts;
  opts.target_nodes = 300;
  Document doc;
  ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
  std::string xml = WriteXml(doc);
  Rng rng(2);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = xml;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      switch (rng.Uniform(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.Uniform(128));
          break;
        case 1:
          mutated.erase(pos, 1 + rng.Uniform(5));
          break;
        default:
          mutated.insert(pos, round % 2 ? "<" : ">");
          break;
      }
      if (mutated.empty()) break;
    }
    Document out;
    Status st = ParseXml(mutated, &out);
    if (st.ok()) ExpectWellFormed(out);
  }
}

TEST(ParserFuzzTest, TruncationsOfValidDocument) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a x=\"1\"><b>text &amp; more</b><!--c--><d/></a>",
                       &doc)
                  .ok());
  std::string xml = WriteXml(doc);
  for (size_t cut = 0; cut < xml.size(); ++cut) {
    Document out;
    Status st = ParseXml(xml.substr(0, cut), &out);
    if (st.ok()) ExpectWellFormed(out);
  }
}

TEST(ParserFuzzTest, GeneratorRoundTripAtScale) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    XMarkOptions opts;
    opts.seed = seed;
    opts.target_nodes = 4000;
    Document doc;
    ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
    std::string xml = WriteXml(doc);
    Document round;
    ASSERT_TRUE(ParseXml(xml, &round).ok());
    ASSERT_EQ(round.NumNodes(), doc.NumNodes());
    for (NodeId n = 0; n < doc.NumNodes(); n += 11) {
      ASSERT_EQ(round.TagName(n), doc.TagName(n));
      ASSERT_EQ(round.SubtreeSize(n), doc.SubtreeSize(n));
      ASSERT_EQ(round.Value(n), doc.Value(n));
    }
  }
}

TEST(ParserFuzzTest, PathologicalNesting) {
  // Very deep but legal nesting parses; mismatched depth fails cleanly.
  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "<n>";
  for (int i = 0; i < 5000; ++i) deep += "</n>";
  Document doc;
  ASSERT_TRUE(ParseXml(deep, &doc).ok());
  EXPECT_EQ(doc.NumNodes(), 5000u);
  std::string unbalanced = deep.substr(0, deep.size() - 4);
  EXPECT_FALSE(ParseXml(unbalanced, &doc).ok());
}

}  // namespace
}  // namespace secxml
