#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "nok/nok_store.h"
#include "storage/paged_file.h"
#include "xml/xmark_generator.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

/// Flat reference model of a labeled document, spliced in O(n) per update.
struct Model {
  std::vector<std::string> tags;
  std::vector<uint32_t> sizes;
  std::vector<uint16_t> depths;
  std::vector<std::string> values;
  std::vector<uint32_t> codes;

  size_t size() const { return tags.size(); }

  static Model FromDocument(const Document& doc,
                            const std::function<uint32_t(NodeId)>& code_of) {
    Model m;
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      m.tags.push_back(doc.TagName(n));
      m.sizes.push_back(doc.SubtreeSize(n));
      m.depths.push_back(doc.Depth(n));
      m.values.emplace_back(doc.Value(n));
      m.codes.push_back(code_of ? code_of(n) : 0);
    }
    return m;
  }

  /// Ancestors-or-self of `n` (every a <= n whose interval covers n).
  std::vector<NodeId> AncestorsOrSelf(NodeId n) const {
    std::vector<NodeId> out;
    for (NodeId a = 0; a <= n; ++a) {
      if (a + sizes[a] > n) out.push_back(a);
    }
    return out;
  }

  void Delete(NodeId root) {
    uint32_t count = sizes[root];
    for (NodeId a : AncestorsOrSelf(root)) {
      if (a != root) sizes[a] -= count;
    }
    auto erase_range = [&](auto& v) {
      v.erase(v.begin() + root, v.begin() + root + count);
    };
    erase_range(tags);
    erase_range(sizes);
    erase_range(depths);
    erase_range(values);
    erase_range(codes);
  }

  void Insert(NodeId parent, NodeId p, const Document& frag,
              const std::function<uint32_t(NodeId)>& code_of) {
    uint32_t count = static_cast<uint32_t>(frag.NumNodes());
    for (NodeId a : AncestorsOrSelf(parent)) sizes[a] += count;
    uint16_t base_depth = static_cast<uint16_t>(depths[parent] + 1);
    std::vector<std::string> ftags, fvalues;
    std::vector<uint32_t> fsizes, fcodes;
    std::vector<uint16_t> fdepths;
    for (NodeId f = 0; f < count; ++f) {
      ftags.push_back(frag.TagName(f));
      fsizes.push_back(frag.SubtreeSize(f));
      fdepths.push_back(static_cast<uint16_t>(base_depth + frag.Depth(f)));
      fvalues.emplace_back(frag.Value(f));
      fcodes.push_back(code_of ? code_of(f) : 0);
    }
    tags.insert(tags.begin() + p, ftags.begin(), ftags.end());
    sizes.insert(sizes.begin() + p, fsizes.begin(), fsizes.end());
    depths.insert(depths.begin() + p, fdepths.begin(), fdepths.end());
    values.insert(values.begin() + p, fvalues.begin(), fvalues.end());
    codes.insert(codes.begin() + p, fcodes.begin(), fcodes.end());
  }
};

void ExpectStoreMatchesModel(NokStore* store, const Model& m) {
  ASSERT_EQ(store->num_nodes(), m.size());
  ASSERT_TRUE(store->CheckIntegrity().ok());
  for (NodeId n = 0; n < m.size(); ++n) {
    auto rec = store->Record(n);
    ASSERT_TRUE(rec.ok()) << n;
    ASSERT_EQ(store->tags().Name(rec->tag), m.tags[n]) << n;
    ASSERT_EQ(rec->subtree_size, m.sizes[n]) << n;
    ASSERT_EQ(rec->depth, m.depths[n]) << n;
    ASSERT_EQ(store->Value(*rec), m.values[n]) << n;
    auto code = store->AccessCode(n);
    ASSERT_TRUE(code.ok()) << n;
    ASSERT_EQ(*code, m.codes[n]) << n;
  }
  // Postings agree with a model recount for every tag seen.
  for (size_t t = 0; t < store->tags().size(); ++t) {
    std::vector<NodeId> want;
    for (NodeId n = 0; n < m.size(); ++n) {
      if (m.tags[n] == store->tags().Name(static_cast<TagId>(t))) {
        want.push_back(n);
      }
    }
    ASSERT_EQ(store->Postings(static_cast<TagId>(t)), want)
        << store->tags().Name(static_cast<TagId>(t));
  }
}

Document MakeFragment(Rng* rng, int max_nodes) {
  DocumentBuilder b;
  b.BeginElement("frag");
  EXPECT_TRUE(b.Text("v" + std::to_string(rng->Uniform(100))).ok());
  int n = 1 + static_cast<int>(rng->Uniform(static_cast<uint64_t>(max_nodes)));
  int open = 1;
  for (int i = 0; i < n; ++i) {
    while (open > 1 && rng->Bernoulli(0.4)) {
      EXPECT_TRUE(b.EndElement().ok());
      --open;
    }
    b.BeginElement(rng->Bernoulli(0.3) ? "item" : "leafy");
    ++open;
  }
  while (open-- > 0) EXPECT_TRUE(b.EndElement().ok());
  Document doc;
  EXPECT_TRUE(b.Finish(&doc).ok());
  return doc;
}

TEST(StructuralUpdateTest, DeleteLeafAndSubtree) {
  Document doc;
  ASSERT_TRUE(
      ParseXml("<a><b><c/><d/></b><e>x</e><f><g><h/></g></f></a>", &doc).ok());
  auto code_of = [](NodeId n) { return n % 3; };
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, code_of, &store).ok());
  Model m = Model::FromDocument(doc, code_of);

  // Delete leaf c (node 2).
  ASSERT_TRUE(store->DeleteSubtree(2).ok());
  m.Delete(2);
  ExpectStoreMatchesModel(store.get(), m);

  // Delete subtree f (now at id 4: a b d e f g h).
  ASSERT_TRUE(store->DeleteSubtree(4).ok());
  m.Delete(4);
  ExpectStoreMatchesModel(store.get(), m);
  EXPECT_EQ(store->num_nodes(), 4u);
}

TEST(StructuralUpdateTest, DeleteRootRejected) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/></a>", &doc).ok());
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  EXPECT_FALSE(store->DeleteSubtree(0).ok());
}

TEST(StructuralUpdateTest, InsertAsFirstAndAfterChild) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/><c><d/></c></a>", &doc).ok());
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  Model m = Model::FromDocument(doc, nullptr);

  Document frag;
  ASSERT_TRUE(ParseXml("<x><y>val</y></x>", &frag).ok());
  auto fcode = [](NodeId f) { return f == 0 ? 5u : 7u; };

  // Insert as first child of c (node 2): lands at id 3.
  auto pos = store->InsertSubtree(2, kInvalidNode, frag, fcode);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 3u);
  m.Insert(2, 3, frag, fcode);
  ExpectStoreMatchesModel(store.get(), m);

  // Insert after child b (node 1) of the root.
  pos = store->InsertSubtree(0, 1, frag, fcode);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 2u);
  m.Insert(0, 2, frag, fcode);
  ExpectStoreMatchesModel(store.get(), m);
}

TEST(StructuralUpdateTest, InsertValidation) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c/></b><d/></a>", &doc).ok());
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  Document frag;
  ASSERT_TRUE(ParseXml("<x/>", &frag).ok());
  // 'after' must be a child of 'parent': c (2) is a grandchild of a (0).
  EXPECT_FALSE(store->InsertSubtree(0, 2, frag, nullptr).ok());
  // 'after' outside the parent entirely.
  EXPECT_FALSE(store->InsertSubtree(1, 3, frag, nullptr).ok());
  Document empty;
  EXPECT_FALSE(store->InsertSubtree(0, kInvalidNode, empty, nullptr).ok());
}

TEST(StructuralUpdateTest, AncestorChain) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c><d/></c></b><e/></a>", &doc).ok());
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  std::vector<NodeId> chain;
  ASSERT_TRUE(store->AncestorChain(3, &chain).ok());  // d
  EXPECT_EQ(chain, (std::vector<NodeId>{0, 1, 2}));
  ASSERT_TRUE(store->AncestorChain(4, &chain).ok());  // e
  EXPECT_EQ(chain, (std::vector<NodeId>{0}));
  ASSERT_TRUE(store->AncestorChain(0, &chain).ok());
  EXPECT_TRUE(chain.empty());
}

class StructuralUpdatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StructuralUpdatePropertyTest, RandomOpsMatchReferenceModel) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 733 + 5);
  XMarkOptions xopts;
  xopts.seed = static_cast<uint64_t>(GetParam()) + 100;
  xopts.target_nodes = 2500;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  auto code_of = [](NodeId n) { return (n / 41) % 4; };
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 48;  // many pages; exercises boundary cases
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, options, code_of, &store).ok());
  Model m = Model::FromDocument(doc, code_of);

  for (int round = 0; round < 12; ++round) {
    if (rng.Bernoulli(0.5) && m.size() > 100) {
      // Delete a random subtree of bounded size.
      NodeId root = 0;
      for (int tries = 0; tries < 50; ++tries) {
        NodeId cand = 1 + static_cast<NodeId>(rng.Uniform(m.size() - 1));
        if (m.sizes[cand] <= 400) {
          root = cand;
          break;
        }
      }
      if (root == 0) continue;
      ASSERT_TRUE(store->DeleteSubtree(root).ok()) << "round " << round;
      m.Delete(root);
    } else {
      Document frag = MakeFragment(&rng, 30);
      auto fcode = [](NodeId f) { return 2 + f % 3; };
      NodeId parent = static_cast<NodeId>(rng.Uniform(m.size()));
      // Choose a random child of parent to insert after (or first child).
      NodeId after = kInvalidNode;
      if (m.sizes[parent] > 1 && rng.Bernoulli(0.7)) {
        std::vector<NodeId> children;
        NodeId c = parent + 1;
        while (c < parent + m.sizes[parent]) {
          children.push_back(c);
          c += m.sizes[c];
        }
        after = children[rng.Uniform(children.size())];
      }
      NodeId p = after == kInvalidNode ? parent + 1 : after + m.sizes[after];
      auto pos = store->InsertSubtree(parent, after, frag, fcode);
      ASSERT_TRUE(pos.ok()) << "round " << round << ": " << pos.status();
      ASSERT_EQ(*pos, p);
      m.Insert(parent, p, frag, fcode);
    }
    ASSERT_NO_FATAL_FAILURE(ExpectStoreMatchesModel(store.get(), m))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, StructuralUpdatePropertyTest,
                         ::testing::Range(0, 6));

TEST(StructuralUpdateTest, SecureStoreInsertInternsCodes) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/><c/></a>", &doc).ok());
  DenseAccessMap map(3, 2);
  map.Set(0, 0, true);
  map.Set(0, 1, true);
  map.Set(1, 0, true);
  DolLabeling labeling = DolLabeling::Build(map);
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &file, {}, &store).ok());

  Document frag;
  ASSERT_TRUE(ParseXml("<x><secret/></x>", &frag).ok());
  DenseAccessMap fmap(2, 2);
  fmap.Set(1, 0, true);  // x: only subject 1
  fmap.Set(0, 1, true);  // secret: only subject 0 (same ACL as node b!)
  fmap.Set(1, 1, false);
  DolLabeling flab = DolLabeling::Build(fmap);

  size_t entries_before = store->codebook().size();
  auto pos = store->InsertSubtree(0, 2, frag, flab);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 3u);
  ASSERT_EQ(store->num_nodes(), 5u);
  // x's ACL ("01") is new; secret's ACL ("10") already existed — dedup.
  EXPECT_EQ(store->codebook().size(), entries_before + 1);
  struct Want {
    NodeId n;
    bool s0, s1;
  };
  for (const Want& w : {Want{0, true, true}, Want{1, true, false},
                        Want{2, false, false}, Want{3, false, true},
                        Want{4, true, false}}) {
    auto a0 = store->Accessible(0, w.n);
    auto a1 = store->Accessible(1, w.n);
    ASSERT_TRUE(a0.ok() && a1.ok());
    EXPECT_EQ(*a0, w.s0) << w.n;
    EXPECT_EQ(*a1, w.s1) << w.n;
  }

  // Mismatched subject widths rejected.
  DenseAccessMap bad(2, 3);
  DolLabeling bad_lab = DolLabeling::Build(bad);
  EXPECT_FALSE(store->InsertSubtree(0, kInvalidNode, frag, bad_lab).ok());
}

TEST(StructuralUpdateTest, DeletePreservesFollowingCodes) {
  // The code of the node right after the deleted range must be preserved
  // even when the deletion removes the transition that established it.
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c/><d/></b><e/><f/></a>", &doc).ok());
  // Codes: a=1 b=2 c=2 d=2 e=3 f=3.
  std::vector<uint32_t> codes = {1, 2, 2, 2, 3, 3};
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {},
                              [&codes](NodeId n) { return codes[n]; }, &store)
                  .ok());
  ASSERT_TRUE(store->DeleteSubtree(1).ok());  // removes b,c,d
  // Remaining: a(1) e(3) f(3) at ids 0,1,2.
  for (NodeId n : {0u, 1u, 2u}) {
    auto code = store->AccessCode(n);
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(*code, n == 0 ? 1u : 3u) << n;
  }
  EXPECT_TRUE(store->CheckIntegrity().ok());
}

}  // namespace
}  // namespace secxml
