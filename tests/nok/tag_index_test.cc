#include "nok/tag_index.h"

#include <gtest/gtest.h>

#include "xml/xmark_generator.h"

namespace secxml {
namespace {

struct Fixture {
  Document doc;
  MemPagedFile store_file;
  MemPagedFile index_file;
  std::unique_ptr<NokStore> store;
  std::unique_ptr<DiskTagIndex> index;
};

std::unique_ptr<Fixture> MakeFixture(uint32_t nodes) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions opts;
  opts.target_nodes = nodes;
  EXPECT_TRUE(GenerateXMark(opts, &f->doc).ok());
  EXPECT_TRUE(
      NokStore::Build(f->doc, &f->store_file, {}, nullptr, &f->store).ok());
  Status st = DiskTagIndex::Build(f->store.get(), &f->index_file, 64,
                                  &f->index);
  EXPECT_TRUE(st.ok()) << st;
  return f;
}

TEST(DiskTagIndexTest, IndexesEveryNode) {
  auto f = MakeFixture(8000);
  EXPECT_EQ(f->index->num_entries(), f->doc.NumNodes());
}

TEST(DiskTagIndexTest, PostingsMatchInMemoryIndex) {
  auto f = MakeFixture(8000);
  for (const char* tag : {"item", "keyword", "parlist", "site", "bold"}) {
    TagId id = f->store->tags().Lookup(tag);
    ASSERT_NE(id, kInvalidTag) << tag;
    auto disk = f->index->Postings(id);
    ASSERT_TRUE(disk.ok());
    const std::vector<NodeId>& mem = f->store->Postings(id);
    ASSERT_EQ(disk->size(), mem.size()) << tag;
    for (size_t i = 0; i < mem.size(); ++i) {
      ASSERT_EQ((*disk)[i].node, mem[i]);
      ASSERT_EQ((*disk)[i].subtree_size, f->doc.SubtreeSize(mem[i]));
    }
  }
}

TEST(DiskTagIndexTest, AbsentTagYieldsEmptyPostings) {
  auto f = MakeFixture(2000);
  auto got = f->index->Postings(9999);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
}

TEST(DiskTagIndexTest, AddAndRemove) {
  auto f = MakeFixture(2000);
  TagId item = f->store->tags().Lookup("item");
  ASSERT_NE(item, kInvalidTag);
  auto before = f->index->Postings(item);
  ASSERT_TRUE(before.ok());
  NodeId victim = (*before)[0].node;
  ASSERT_TRUE(f->index->Remove(item, victim).ok());
  auto after = f->index->Postings(item);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), before->size() - 1);
  ASSERT_TRUE(f->index->Add(item, victim, f->doc.SubtreeSize(victim)).ok());
  auto restored = f->index->Postings(item);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), before->size());
  EXPECT_EQ((*restored)[0].node, victim);
}

TEST(DiskTagIndexTest, PersistsAcrossReopen) {
  auto f = MakeFixture(4000);
  ASSERT_TRUE(f->index->Flush().ok());
  std::unique_ptr<DiskTagIndex> reopened;
  ASSERT_TRUE(DiskTagIndex::Open(&f->index_file, 32, &reopened).ok());
  EXPECT_EQ(reopened->num_entries(), f->doc.NumNodes());
  TagId keyword = f->store->tags().Lookup("keyword");
  auto got = reopened->Postings(keyword);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), f->store->Postings(keyword).size());
}

TEST(DiskTagIndexTest, ScanIsPageEfficient) {
  auto f = MakeFixture(20000);
  TagId item = f->store->tags().Lookup("item");
  ASSERT_TRUE(f->index->tree()->buffer_pool()->EvictAll().ok());
  f->index->tree()->buffer_pool()->mutable_stats()->Reset();
  auto got = f->index->Postings(item);
  ASSERT_TRUE(got.ok());
  // A range scan reads ~height + ceil(postings / leaf capacity) pages, far
  // fewer than one page per posting.
  uint64_t reads = f->index->io_stats().page_reads;
  EXPECT_LT(reads, got->size() / 50 + 10);
}

}  // namespace
}  // namespace secxml
