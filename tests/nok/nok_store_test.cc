#include "nok/nok_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/xmark_generator.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

Document SmallDoc() {
  Document doc;
  EXPECT_TRUE(ParseXml(
                  "<a><b>v1</b><c/><d/><e><f/><g/><h><i/><j/><k/><l/></h></e></a>",
                  &doc)
                  .ok());
  return doc;
}

Document XMarkDoc(uint32_t nodes, uint64_t seed = 1) {
  XMarkOptions opts;
  opts.seed = seed;
  opts.target_nodes = nodes;
  Document doc;
  EXPECT_TRUE(GenerateXMark(opts, &doc).ok());
  return doc;
}

std::unique_ptr<NokStore> BuildStore(
    const Document& doc, PagedFile* file, NokStoreOptions options = {},
    const std::function<uint32_t(NodeId)>& code_of = nullptr) {
  std::unique_ptr<NokStore> store;
  Status s = NokStore::Build(doc, file, options, code_of, &store);
  EXPECT_TRUE(s.ok()) << s;
  return store;
}

TEST(NokStoreTest, RecordsMirrorDocument) {
  Document doc = SmallDoc();
  MemPagedFile file;
  auto store = BuildStore(doc, &file);
  ASSERT_EQ(store->num_nodes(), doc.NumNodes());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    auto rec = store->Record(n);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->tag, doc.Tag(n));
    EXPECT_EQ(rec->subtree_size, doc.SubtreeSize(n));
    EXPECT_EQ(rec->depth, doc.Depth(n));
    EXPECT_EQ(store->Value(*rec), doc.Value(n));
  }
}

TEST(NokStoreTest, NavigationMatchesDocument) {
  Document doc = XMarkDoc(5000);
  MemPagedFile file;
  auto store = BuildStore(doc, &file);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    auto rec = store->Record(n);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(NokStore::FirstChild(n, *rec), doc.FirstChild(n));
    NodeId parent = doc.Parent(n);
    if (parent != kInvalidNode) {
      NodeId parent_end = parent + doc.SubtreeSize(parent);
      EXPECT_EQ(NokStore::FollowingSibling(n, *rec, parent_end),
                doc.NextSibling(n));
    }
  }
}

TEST(NokStoreTest, MultiPageLayout) {
  Document doc = XMarkDoc(3000);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 64;
  auto store = BuildStore(doc, &file, options);
  EXPECT_GT(store->num_pages(), 40u);
  // Page infos partition [0, num_nodes).
  NodeId expect = 0;
  for (const auto& info : store->page_infos()) {
    EXPECT_EQ(info.first_node, expect);
    EXPECT_GT(info.num_records, 0);
    expect += info.num_records;
  }
  EXPECT_EQ(expect, store->num_nodes());
  // PageOrdinalOf agrees with the partition.
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NodeId n = static_cast<NodeId>(rng.Uniform(store->num_nodes()));
    size_t ord = store->PageOrdinalOf(n);
    const auto& info = store->page_infos()[ord];
    EXPECT_GE(n, info.first_node);
    EXPECT_LT(n, info.first_node + info.num_records);
  }
  EXPECT_TRUE(store->CheckIntegrity().ok());
}

TEST(NokStoreTest, PostingsAreDocumentOrdered) {
  Document doc = XMarkDoc(4000);
  MemPagedFile file;
  auto store = BuildStore(doc, &file);
  TagId item = store->tags().Lookup("item");
  ASSERT_NE(item, kInvalidTag);
  const auto& postings = store->Postings(item);
  ASSERT_FALSE(postings.empty());
  for (size_t i = 1; i < postings.size(); ++i) {
    EXPECT_LT(postings[i - 1], postings[i]);
  }
  for (NodeId n : postings) {
    auto rec = store->Record(n);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->tag, item);
  }
  // Absent tag -> empty postings.
  EXPECT_TRUE(store->Postings(99999).empty());
}

TEST(NokStoreTest, EmbeddedCodesResolvePerNode) {
  Document doc = XMarkDoc(3000);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 50;
  // Alternate codes in blocks of 37 nodes to create transitions that fall
  // at arbitrary in-page slots and across page boundaries.
  auto code_of = [](NodeId n) { return (n / 37) % 3; };
  auto store = BuildStore(doc, &file, options, code_of);
  for (NodeId n = 0; n < store->num_nodes(); ++n) {
    auto code = store->AccessCode(n);
    ASSERT_TRUE(code.ok());
    ASSERT_EQ(*code, code_of(n)) << "node " << n;
  }
}

TEST(NokStoreTest, UniformCodePagesHaveNoChangeBit) {
  Document doc = XMarkDoc(2000);
  MemPagedFile file;
  auto store = BuildStore(doc, &file, {}, [](NodeId) { return 7u; });
  for (const auto& info : store->page_infos()) {
    EXPECT_FALSE(info.change_bit);
    EXPECT_EQ(info.first_code, 7u);
  }
  auto count = store->CountEmbeddedTransitions();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(NokStoreTest, AccessCodeUsesInMemoryHeaderWithoutIo) {
  Document doc = XMarkDoc(3000);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 64;
  auto store = BuildStore(doc, &file, options, [](NodeId) { return 3u; });
  ASSERT_TRUE(store->buffer_pool()->EvictAll().ok());
  uint64_t reads_before = store->io_stats().page_reads;
  // Uniform code => no change bits => every lookup is answered from the
  // in-memory page header table.
  for (NodeId n = 0; n < store->num_nodes(); n += 17) {
    auto code = store->AccessCode(n);
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(*code, 3u);
  }
  EXPECT_EQ(store->io_stats().page_reads, reads_before);
}

TEST(NokStoreTest, SetPageAclRewritesCodes) {
  Document doc = XMarkDoc(1000);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 100;
  auto store = BuildStore(doc, &file, options);
  ASSERT_GE(store->num_pages(), 2u);
  const auto& info = store->page_infos()[1];
  NodeId base = info.first_node;
  uint16_t records = info.num_records;
  ASSERT_GE(records, 10);
  std::vector<DolTransition> ts = {{5, 0, 2u}, {9, 0, 0u}};
  ASSERT_TRUE(store->SetPageAcl(1, 1u, ts).ok());
  for (uint16_t s = 0; s < records; ++s) {
    auto code = store->AccessCode(base + s);
    ASSERT_TRUE(code.ok());
    uint32_t want = s < 5 ? 1u : (s < 9 ? 2u : 0u);
    EXPECT_EQ(*code, want) << "slot " << s;
  }
  auto readback = store->PageTransitions(1);
  ASSERT_TRUE(readback.ok());
  ASSERT_EQ(readback->size(), 2u);
  EXPECT_EQ((*readback)[0].slot, 5);
  EXPECT_EQ((*readback)[1].code, 0u);
  EXPECT_TRUE(store->CheckIntegrity().ok());
}

TEST(NokStoreTest, SetPageAclValidatesSlots) {
  Document doc = XMarkDoc(500);
  MemPagedFile file;
  auto store = BuildStore(doc, &file);
  // Slot 0 is the implicit initial transition; not allowed explicitly.
  EXPECT_FALSE(store->SetPageAcl(0, 0, {{0, 0, 1u}}).ok());
  // Descending slots rejected.
  EXPECT_FALSE(store->SetPageAcl(0, 0, {{5, 0, 1u}, {3, 0, 0u}}).ok());
  // Slot beyond the record count rejected.
  uint16_t records = store->page_infos()[0].num_records;
  EXPECT_FALSE(store->SetPageAcl(0, 0, {{records, 0, 1u}}).ok());
  // Bad ordinal rejected.
  EXPECT_FALSE(store->SetPageAcl(store->num_pages(), 0, {}).ok());
}

TEST(NokStoreTest, SetPageAclSplitsOnOverflow) {
  Document doc = XMarkDoc(2000);
  MemPagedFile file;
  NokStoreOptions options;
  options.transition_slack = 0;
  auto store = BuildStore(doc, &file, options);
  size_t pages_before = store->num_pages();
  const auto info0 = store->page_infos()[0];
  // A full default page (247 records) has room for only ~16 transitions;
  // install one transition per odd slot to force a split.
  std::vector<DolTransition> ts;
  for (uint16_t s = 1; s < info0.num_records; ++s) {
    ts.push_back(DolTransition{s, 0, s % 2 == 0 ? 4u : 9u});
  }
  ASSERT_FALSE(PageFits(info0.num_records, static_cast<uint32_t>(ts.size())));
  ASSERT_TRUE(store->SetPageAcl(0, 4u, ts).ok());
  EXPECT_EQ(store->num_pages(), pages_before + 1);
  // Codes resolve as intended across the split.
  for (uint16_t s = 0; s < info0.num_records; ++s) {
    auto code = store->AccessCode(info0.first_node + s);
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(*code, s % 2 == 0 ? 4u : 9u) << "slot " << s;
  }
  // Structure is still intact and later nodes unaffected.
  EXPECT_TRUE(store->CheckIntegrity().ok());
  auto rec = store->Record(store->num_nodes() - 1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->subtree_size, 1u);
}

TEST(NokStoreTest, OpenRebuildsFromDisk) {
  Document doc = XMarkDoc(2500, /*seed=*/5);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 80;
  auto code_of = [](NodeId n) { return (n / 53) % 2; };
  {
    auto store = BuildStore(doc, &file, options, code_of);
    ASSERT_TRUE(store->buffer_pool()->FlushAll().ok());
  }
  std::unique_ptr<NokStore> reopened;
  ASSERT_TRUE(NokStore::Open(&file, options, &reopened).ok());
  ASSERT_EQ(reopened->num_nodes(), doc.NumNodes());
  EXPECT_TRUE(reopened->CheckIntegrity().ok());
  for (NodeId n = 0; n < doc.NumNodes(); n += 7) {
    auto rec = reopened->Record(n);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->tag, doc.Tag(n));
    EXPECT_EQ(rec->subtree_size, doc.SubtreeSize(n));
    auto code = reopened->AccessCode(n);
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(*code, code_of(n));
  }
  // Postings rebuilt: same count for "item".
  TagId item_tag = doc.tags().Lookup("item");
  ASSERT_NE(item_tag, kInvalidTag);
  EXPECT_FALSE(reopened->Postings(item_tag).empty());
}

TEST(NokStoreTest, BuildRejectsBadInput) {
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  Document empty;
  EXPECT_FALSE(NokStore::Build(empty, &file, {}, nullptr, &store).ok());
  Document doc = SmallDoc();
  ASSERT_TRUE(file.AllocatePage().ok());
  EXPECT_FALSE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
}

TEST(NokStoreTest, OpenRejectsCorruptPages) {
  MemPagedFile file;
  {
    Document doc = SmallDoc();
    auto store = BuildStore(doc, &file);
    ASSERT_TRUE(store->buffer_pool()->FlushAll().ok());
  }
  // Corrupt the record count.
  Page p;
  ASSERT_TRUE(file.ReadPage(0, &p).ok());
  NokPageHeader header = p.ReadAt<NokPageHeader>(0);
  header.num_records = 0;
  p.WriteAt(0, header);
  ASSERT_TRUE(file.WritePage(0, p).ok());
  std::unique_ptr<NokStore> reopened;
  EXPECT_EQ(NokStore::Open(&file, {}, &reopened).code(),
            StatusCode::kCorruption);
}

TEST(NokStoreTest, IntegrityCatchesCorruptSubtreeSize) {
  MemPagedFile file;
  Document doc = SmallDoc();
  auto store = BuildStore(doc, &file);
  ASSERT_TRUE(store->buffer_pool()->FlushAll().ok());
  Page p;
  ASSERT_TRUE(file.ReadPage(0, &p).ok());
  NokRecord rec = p.ReadAt<NokRecord>(RecordOffset(3));
  rec.subtree_size = 100;  // exceeds the document
  p.WriteAt(RecordOffset(3), rec);
  ASSERT_TRUE(file.WritePage(0, p).ok());
  ASSERT_TRUE(store->buffer_pool()->EvictAll().ok());
  EXPECT_FALSE(store->CheckIntegrity().ok());
}

TEST(NokStoreTest, RecordOutOfRangeFails) {
  MemPagedFile file;
  Document doc = SmallDoc();
  auto store = BuildStore(doc, &file);
  EXPECT_FALSE(store->Record(store->num_nodes()).ok());
  EXPECT_FALSE(store->AccessCode(store->num_nodes()).ok());
}

TEST(NokStoreTest, PageScopedLookupsFailClosedOnCorruptIds) {
  MemPagedFile file;
  Document doc = XMarkDoc(3000);
  NokStoreOptions options;
  options.max_records_per_page = 64;
  auto store = BuildStore(doc, &file, options);
  ASSERT_GT(store->num_pages(), 2u);
  // The ordinal lookup is total: even an id far beyond the document maps to
  // some directory entry (the last page) instead of indexing out of bounds.
  NodeId bogus = store->num_nodes() + 12345;
  EXPECT_EQ(store->PageOrdinalOf(bogus), store->num_pages() - 1);
  // A node belonging to a different page than the claimed ordinal — the
  // shape a corrupt subtree_size jump produces — is rejected as corruption.
  NodeId foreign = store->page_infos()[1].first_node;
  EXPECT_EQ(store->RecordInPage(0, foreign).status().code(),
            StatusCode::kCorruption);
  NokRecord rec;
  uint32_t code;
  EXPECT_EQ(store->RecordAndCodeInPage(0, foreign, &rec, &code).code(),
            StatusCode::kCorruption);
  // So is an ordinal beyond the directory.
  EXPECT_EQ(store->RecordInPage(store->num_pages() + 7, 0).status().code(),
            StatusCode::kCorruption);
}

TEST(NokStoreTest, CorruptOnDiskHeaderIsDetected) {
  MemPagedFile file;
  Document doc = XMarkDoc(2000);
  NokStoreOptions options;
  options.max_records_per_page = 64;
  // Alternate codes so pages carry embedded transitions (change bit set).
  auto store = BuildStore(doc, &file, options,
                          [](NodeId n) { return n / 7 % 2; });
  ASSERT_TRUE(store->buffer_pool()->FlushAll().ok());
  // Blow up the transition count of page 0: TransitionOffset would walk far
  // outside the page if the count were trusted.
  PageId target = store->page_infos()[0].page_id;
  Page p;
  ASSERT_TRUE(file.ReadPage(target, &p).ok());
  NokPageHeader header = p.ReadAt<NokPageHeader>(0);
  header.num_transitions = 0xffff;
  p.WriteAt(0, header);
  ASSERT_TRUE(file.WritePage(target, p).ok());
  ASSERT_TRUE(store->buffer_pool()->EvictAll().ok());
  EXPECT_EQ(store->PageTransitions(0).status().code(),
            StatusCode::kCorruption);
  NodeId last_in_page = store->page_infos()[0].num_records - 1;
  EXPECT_EQ(store->AccessCode(last_in_page).status().code(),
            StatusCode::kCorruption);
  NokRecord rec;
  uint32_t code;
  EXPECT_EQ(store->RecordAndCode(last_in_page, &rec, &code).code(),
            StatusCode::kCorruption);
  // A zeroed record count is equally impossible for a live page.
  header.num_transitions = 0;
  header.num_records = 0;
  p.WriteAt(0, header);
  ASSERT_TRUE(file.WritePage(target, p).ok());
  ASSERT_TRUE(store->buffer_pool()->EvictAll().ok());
  EXPECT_EQ(store->PageTransitions(0).status().code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace secxml
