#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "nok/nok_store.h"
#include "storage/paged_file.h"
#include "xml/xmark_generator.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

Document XMarkDoc(uint32_t nodes, uint64_t seed = 3) {
  XMarkOptions opts;
  opts.seed = seed;
  opts.target_nodes = nodes;
  Document doc;
  EXPECT_TRUE(GenerateXMark(opts, &doc).ok());
  return doc;
}

void ExpectStoresEqual(NokStore* a, NokStore* b) {
  ASSERT_EQ(a->num_nodes(), b->num_nodes());
  ASSERT_EQ(a->num_pages(), b->num_pages());
  for (NodeId n = 0; n < a->num_nodes(); ++n) {
    auto ra = a->Record(n);
    auto rb = b->Record(n);
    ASSERT_TRUE(ra.ok() && rb.ok()) << n;
    ASSERT_EQ(a->tags().Name(ra->tag), b->tags().Name(rb->tag)) << n;
    ASSERT_EQ(ra->subtree_size, rb->subtree_size) << n;
    ASSERT_EQ(ra->depth, rb->depth) << n;
    auto ca = a->AccessCode(n);
    auto cb = b->AccessCode(n);
    ASSERT_TRUE(ca.ok() && cb.ok()) << n;
    ASSERT_EQ(*ca, *cb) << n;
  }
  ASSERT_TRUE(b->CheckIntegrity().ok());
}

TEST(NokPersistenceTest, SnapshotRoundTripsFreshStore) {
  Document doc = XMarkDoc(3000);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 64;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, options,
                              [](NodeId n) { return n % 5; }, &store)
                  .ok());
  ASSERT_TRUE(store->Persist().ok());
  std::unique_ptr<NokStore> reopened;
  ASSERT_TRUE(NokStore::Open(&file, options, &reopened).ok());
  ExpectStoresEqual(store.get(), reopened.get());
  // The tag dictionary survives by name.
  EXPECT_EQ(reopened->tags().Lookup("item"), store->tags().Lookup("item"));
}

TEST(NokPersistenceTest, SnapshotSurvivesSplitsAndStructuralUpdates) {
  Document doc = XMarkDoc(4000, 7);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 48;
  options.transition_slack = 0;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, options, nullptr, &store).ok());

  // Force page churn: a transition-heavy ACL rewrite (splits), a subtree
  // deletion, and an insertion.
  std::vector<DolTransition> ts;
  for (uint16_t s = 1; s < store->page_infos()[2].num_records; ++s) {
    ts.push_back(DolTransition{s, 0, s % 2 ? 7u : 8u});
  }
  ASSERT_TRUE(store->SetPageAcl(2, 7u, ts).ok());
  ASSERT_TRUE(store->DeleteSubtree(100).ok());
  Document frag;
  ASSERT_TRUE(ParseXml("<extra><one/><two>t</two></extra>", &frag).ok());
  auto pos = store->InsertSubtree(0, kInvalidNode, frag,
                                  [](NodeId) { return 9u; });
  ASSERT_TRUE(pos.ok());
  ASSERT_TRUE(store->CheckIntegrity().ok());

  // Without a snapshot, physical order no longer matches document order;
  // with one, Open restores the exact store.
  ASSERT_TRUE(store->Persist().ok());
  std::unique_ptr<NokStore> reopened;
  ASSERT_TRUE(NokStore::Open(&file, options, &reopened).ok());
  ExpectStoresEqual(store.get(), reopened.get());
  // The inserted fragment is fully visible through the reopened store.
  auto rec = reopened->Record(*pos);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(reopened->tags().Name(rec->tag), "extra");
  auto code = reopened->AccessCode(*pos);
  ASSERT_TRUE(code.ok());
  EXPECT_EQ(*code, 9u);
}

TEST(NokPersistenceTest, RepeatedPersistUsesLatestSnapshot) {
  Document doc = XMarkDoc(1500);
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  ASSERT_TRUE(store->Persist().ok());
  ASSERT_TRUE(store->DeleteSubtree(50).ok());
  ASSERT_TRUE(store->Persist().ok());
  std::unique_ptr<NokStore> reopened;
  ASSERT_TRUE(NokStore::Open(&file, {}, &reopened).ok());
  EXPECT_EQ(reopened->num_nodes(), store->num_nodes());
  ExpectStoresEqual(store.get(), reopened.get());
}

TEST(NokPersistenceTest, OnDiskRoundTrip) {
  auto path = std::filesystem::temp_directory_path() / "secxml_store.db";
  std::filesystem::remove(path);
  Document doc = XMarkDoc(2000);
  {
    auto created = FilePagedFile::Create(path.string());
    ASSERT_TRUE(created.ok());
    std::unique_ptr<NokStore> store;
    ASSERT_TRUE(NokStore::Build(doc, created->get(), {},
                                [](NodeId n) { return n / 100; }, &store)
                    .ok());
    ASSERT_TRUE(store->DeleteSubtree(20).ok());
    ASSERT_TRUE(store->Persist().ok());
  }  // file closed
  {
    auto opened = FilePagedFile::Open(path.string());
    ASSERT_TRUE(opened.ok());
    std::unique_ptr<NokStore> store;
    ASSERT_TRUE(NokStore::Open(opened->get(), {}, &store).ok());
    EXPECT_EQ(store->num_nodes(), doc.NumNodes() - doc.SubtreeSize(20));
    EXPECT_TRUE(store->CheckIntegrity().ok());
  }
  std::filesystem::remove(path);
}

TEST(NokPersistenceTest, ValuesSurvivePersistAndCompact) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b>hello</b><c attr=\"7\">world</c><d/></a>", &doc)
                  .ok());
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  ASSERT_TRUE(store->Persist().ok());

  std::unique_ptr<NokStore> reopened;
  ASSERT_TRUE(NokStore::Open(&file, {}, &reopened).ok());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    auto rec = reopened->Record(n);
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(reopened->Value(*rec), doc.Value(n)) << n;
  }

  MemPagedFile compact_file;
  std::unique_ptr<NokStore> compacted;
  ASSERT_TRUE(reopened->CompactTo(&compact_file, {}, &compacted).ok());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    auto rec = compacted->Record(n);
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(compacted->Value(*rec), doc.Value(n)) << n;
  }
}

TEST(NokPersistenceTest, CompactReclaimsOrphanedPages) {
  Document doc = XMarkDoc(3000);
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 48;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, options, nullptr, &store).ok());
  // Churn: deletions orphan pages, persists append snapshots.
  for (NodeId victim : {400u, 800u, 1200u}) {
    ASSERT_TRUE(store->DeleteSubtree(victim).ok());
    ASSERT_TRUE(store->Persist().ok());
  }
  MemPagedFile compact_file;
  std::unique_ptr<NokStore> compacted;
  ASSERT_TRUE(store->CompactTo(&compact_file, options, &compacted).ok());
  EXPECT_LT(compact_file.NumPages(), file.NumPages());
  ASSERT_TRUE(compacted->CheckIntegrity().ok());
  EXPECT_EQ(compacted->num_nodes(), store->num_nodes());
  // And the compacted file reopens.
  std::unique_ptr<NokStore> reopened;
  ASSERT_TRUE(NokStore::Open(&compact_file, options, &reopened).ok());
  EXPECT_EQ(reopened->num_nodes(), store->num_nodes());
}

TEST(NokPersistenceTest, CompactRequiresEmptyDestination) {
  Document doc = XMarkDoc(500);
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  MemPagedFile dest;
  ASSERT_TRUE(dest.AllocatePage().ok());
  std::unique_ptr<NokStore> out;
  EXPECT_FALSE(store->CompactTo(&dest, {}, &out).ok());
}

TEST(NokPersistenceTest, CorruptSuperblockRejected) {
  Document doc = XMarkDoc(1000);
  MemPagedFile file;
  std::unique_ptr<NokStore> store;
  ASSERT_TRUE(NokStore::Build(doc, &file, {}, nullptr, &store).ok());
  ASSERT_TRUE(store->Persist().ok());
  // Corrupt the superblock's blob extent.
  Page p;
  PageId last = file.NumPages() - 1;
  ASSERT_TRUE(file.ReadPage(last, &p).ok());
  p.WriteAt<uint32_t>(16, 0xfffffff0u);  // blob_start out of range
  ASSERT_TRUE(file.WritePage(last, p).ok());
  std::unique_ptr<NokStore> reopened;
  EXPECT_EQ(NokStore::Open(&file, {}, &reopened).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace secxml
