#include "core/secure_store.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/policy.h"
#include "storage/paged_file.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

struct Fixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

// Builds an XMark document with `subjects` MSO-propagated random subjects.
std::unique_ptr<Fixture> MakeFixture(uint32_t nodes, size_t subjects,
                                     uint64_t seed,
                                     NokStoreOptions options = {}) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions xopts;
  xopts.seed = seed;
  xopts.target_nodes = nodes;
  EXPECT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  NodeId n = static_cast<NodeId>(f->doc.NumNodes());
  Rng rng(seed * 7 + 1);
  IntervalAccessMap map(n, subjects);
  for (SubjectId s = 0; s < subjects; ++s) {
    std::vector<AclSeed> seeds = {{0, rng.Bernoulli(0.5)}};
    for (int i = 0; i < 30; ++i) {
      seeds.push_back({static_cast<NodeId>(rng.Uniform(n)),
                       rng.Bernoulli(0.5)});
    }
    map.SetSubjectIntervals(s, PropagateMostSpecificOverride(f->doc, seeds));
  }
  EXPECT_TRUE(map.Validate().ok());
  f->labeling =
      DolLabeling::BuildFromEvents(n, map.InitialAcl(), map.CollectEvents());
  Status st = SecureStore::Build(f->doc, f->labeling, &f->file, options,
                                 &f->store);
  EXPECT_TRUE(st.ok()) << st;
  return f;
}

TEST(SecureStoreTest, AccessMatchesLogicalLabeling) {
  auto f = MakeFixture(3000, 4, 11);
  for (NodeId x = 0; x < f->store->num_nodes(); ++x) {
    for (SubjectId s = 0; s < 4; ++s) {
      auto got = f->store->Accessible(s, x);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, f->labeling.Accessible(s, x))
          << "node " << x << " subject " << s;
    }
  }
}

TEST(SecureStoreTest, EmbeddedTransitionCountTracksLabeling) {
  auto f = MakeFixture(5000, 3, 13);
  auto embedded = f->store->nok()->CountEmbeddedTransitions();
  ASSERT_TRUE(embedded.ok());
  // Every logical transition is either a page-initial node or an embedded
  // entry; embedded count is at most the logical count and the difference
  // is bounded by the page count.
  EXPECT_LE(*embedded, f->labeling.num_transitions());
  EXPECT_GE(*embedded + f->store->nok()->num_pages(),
            f->labeling.num_transitions());
}

TEST(SecureStoreTest, ExtractLabelingRoundTrips) {
  auto f = MakeFixture(4000, 5, 17);
  auto extracted = f->store->ExtractLabeling();
  ASSERT_TRUE(extracted.ok());
  ASSERT_TRUE(extracted->CheckInvariants().ok());
  ASSERT_EQ(extracted->num_transitions(), f->labeling.num_transitions());
  for (size_t i = 0; i < extracted->transitions().size(); ++i) {
    EXPECT_EQ(extracted->transitions()[i].node,
              f->labeling.transitions()[i].node);
  }
}

TEST(SecureStoreTest, BuildRejectsMismatchedLabeling) {
  Document doc;
  XMarkOptions xopts;
  xopts.target_nodes = 500;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  DenseAccessMap map(10, 1);  // wrong node count
  DolLabeling labeling = DolLabeling::Build(map);
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  EXPECT_FALSE(SecureStore::Build(doc, labeling, &file, {}, &store).ok());
}

TEST(SecureStoreTest, PageSkipPredicates) {
  NokStoreOptions options;
  options.max_records_per_page = 64;
  auto f = MakeFixture(4000, 2, 19, options);
  const auto& infos = f->store->nok()->page_infos();
  int wholly_in = 0, wholly_acc = 0;
  for (size_t p = 0; p < infos.size(); ++p) {
    bool skip_claim = f->store->PageWhollyInaccessible(p, 0);
    bool acc_claim = f->store->PageWhollyAccessible(p, 0);
    wholly_in += skip_claim;
    wholly_acc += acc_claim;
    // Verify the claims against per-node truth.
    for (uint16_t i = 0; i < infos[p].num_records; ++i) {
      bool acc = f->labeling.Accessible(0, infos[p].first_node + i);
      if (skip_claim) ASSERT_FALSE(acc) << "page " << p;
      if (acc_claim) ASSERT_TRUE(acc) << "page " << p;
    }
  }
  // With structurally local ACLs most pages are uniform; both kinds occur.
  EXPECT_GT(wholly_in + wholly_acc, 0);
}

TEST(SecureStoreTest, AddRemoveSubjectsAreCodebookOnly) {
  auto f = MakeFixture(2000, 2, 23);
  uint64_t writes_before = f->store->io_stats().page_writes;
  auto s2_or = f->store->AddSubject(false);
  ASSERT_TRUE(s2_or.ok());
  SubjectId s2 = *s2_or;
  auto s3 = f->store->AddSubjectLike(0);
  ASSERT_TRUE(s3.ok());
  EXPECT_EQ(f->store->io_stats().page_writes, writes_before);
  EXPECT_EQ(s2, 2u);
  EXPECT_EQ(*s3, 3u);
  for (NodeId x = 0; x < f->store->num_nodes(); x += 29) {
    auto a = f->store->Accessible(s2, x);
    ASSERT_TRUE(a.ok());
    EXPECT_FALSE(*a);
    auto b = f->store->Accessible(*s3, x);
    auto orig = f->store->Accessible(0, x);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(orig.ok());
    EXPECT_EQ(*b, *orig);
  }
  ASSERT_TRUE(f->store->RemoveSubject(*s3).ok());
  EXPECT_EQ(f->store->io_stats().page_writes, writes_before);
  EXPECT_EQ(f->store->codebook().num_subjects(), 3u);
}

TEST(SecureStoreTest, SetNodeAccessPhysically) {
  auto f = MakeFixture(2000, 2, 29);
  NodeId target = 777;
  auto before = f->store->Accessible(0, target);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(f->store->SetNodeAccess(target, 0, !*before).ok());
  auto after = f->store->Accessible(0, target);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, !*before);
  // Neighbours unaffected.
  for (NodeId x : {target - 1, target + 1}) {
    auto got = f->store->Accessible(0, x);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, f->labeling.Accessible(0, x));
  }
  // Other subject unaffected at the target.
  auto other = f->store->Accessible(1, target);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, f->labeling.Accessible(1, target));
  EXPECT_TRUE(f->store->nok()->CheckIntegrity().ok());
}

TEST(SecureStoreTest, SetSubtreeAccessPhysically) {
  NokStoreOptions options;
  options.max_records_per_page = 64;
  auto f = MakeFixture(4000, 2, 31, options);
  // Pick a subtree that spans several pages.
  NodeId root = kInvalidNode;
  for (NodeId x = 0; x < f->store->num_nodes(); ++x) {
    if (f->doc.SubtreeSize(x) > 200 && f->doc.SubtreeSize(x) < 1000) {
      root = x;
      break;
    }
  }
  ASSERT_NE(root, kInvalidNode);
  NodeId end = f->doc.SubtreeEnd(root);
  ASSERT_TRUE(f->store->SetSubtreeAccess(root, 1, false).ok());
  for (NodeId x = 0; x < f->store->num_nodes(); x += 3) {
    auto got = f->store->Accessible(1, x);
    ASSERT_TRUE(got.ok());
    bool want = (x >= root && x < end) ? false : f->labeling.Accessible(1, x);
    ASSERT_EQ(*got, want) << "node " << x;
  }
  EXPECT_TRUE(f->store->nok()->CheckIntegrity().ok());
}

TEST(SecureStoreTest, PhysicalUpdatesMatchLogicalModel) {
  NokStoreOptions options;
  options.max_records_per_page = 80;
  options.transition_slack = 2;
  auto f = MakeFixture(3000, 3, 37, options);
  DolLabeling logical = f->labeling;  // copy as reference model
  Rng rng(99);
  for (int round = 0; round < 40; ++round) {
    NodeId begin = static_cast<NodeId>(rng.Uniform(f->store->num_nodes()));
    NodeId end = begin + 1 + static_cast<NodeId>(rng.Uniform(
                             std::min<NodeId>(300, f->store->num_nodes() - begin)));
    SubjectId s = static_cast<SubjectId>(rng.Uniform(3));
    bool v = rng.Bernoulli(0.5);
    ASSERT_TRUE(f->store->SetRangeAccess(begin, end, s, v).ok());
    ASSERT_TRUE(logical.SetRangeAccess(begin, end, s, v).ok());
  }
  for (NodeId x = 0; x < f->store->num_nodes(); ++x) {
    for (SubjectId s = 0; s < 3; ++s) {
      auto got = f->store->Accessible(s, x);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(*got, logical.Accessible(s, x)) << "node " << x;
    }
  }
  ASSERT_TRUE(f->store->nok()->CheckIntegrity().ok());
  // Physical and logical transition structure agree after extraction.
  auto extracted = f->store->ExtractLabeling();
  ASSERT_TRUE(extracted.ok());
  EXPECT_EQ(extracted->num_transitions(), logical.num_transitions());
}

TEST(SecureStoreTest, UpdateTouchesOnlyCoveredPages) {
  NokStoreOptions options;
  options.max_records_per_page = 100;
  auto f = MakeFixture(5000, 2, 41, options);
  ASSERT_TRUE(f->store->nok()->buffer_pool()->FlushAll().ok());
  ASSERT_TRUE(f->store->nok()->buffer_pool()->EvictAll().ok());
  f->store->nok()->buffer_pool()->mutable_stats()->Reset();
  // A ~500-node subtree spans about 5 pages of 100 records; the paper's
  // Section 3.4 predicts ceil(N/B) page reads and writes.
  NodeId begin = 1000, end = 1500;
  ASSERT_TRUE(f->store->SetRangeAccess(begin, end, 0, true).ok());
  ASSERT_TRUE(f->store->nok()->buffer_pool()->FlushAll().ok());
  const IoStats& stats = f->store->io_stats();
  EXPECT_LE(stats.page_reads, 7u);
  EXPECT_LE(stats.page_writes, 8u);  // +1 for a possible split
  EXPECT_GE(stats.page_reads, 5u);
}

TEST(SecureStoreTest, HiddenSubtreeIntervalsMatchBruteForce) {
  for (uint64_t seed : {43u, 47u, 53u}) {
    NokStoreOptions options;
    options.max_records_per_page = 64;
    auto f = MakeFixture(4000, 3, seed, options);
    for (SubjectId s = 0; s < 3; ++s) {
      auto got = f->store->HiddenSubtreeIntervals(s);
      ASSERT_TRUE(got.ok());
      // Brute force: a node is hidden iff any ancestor-or-self is
      // inaccessible.
      std::vector<bool> hidden(f->doc.NumNodes());
      for (NodeId x = 0; x < f->doc.NumNodes(); ++x) {
        NodeId p = f->doc.Parent(x);
        hidden[x] = (p != kInvalidNode && hidden[p]) ||
                    !f->labeling.Accessible(s, x);
      }
      std::vector<bool> from_intervals(f->doc.NumNodes(), false);
      NodeId prev_end = 0;
      for (const NodeInterval& iv : *got) {
        ASSERT_LT(iv.begin, iv.end);
        ASSERT_GE(iv.begin, prev_end);  // sorted, disjoint, maximal
        prev_end = iv.end;
        for (NodeId x = iv.begin; x < iv.end; ++x) from_intervals[x] = true;
      }
      for (NodeId x = 0; x < f->doc.NumNodes(); ++x) {
        ASSERT_EQ(from_intervals[x], hidden[x])
            << "seed " << seed << " subject " << s << " node " << x;
      }
    }
  }
}

TEST(SecureStoreTest, HiddenIntervalsAreCachedUntilUpdate) {
  NokStoreOptions options;
  options.max_records_per_page = 64;
  auto f = MakeFixture(4000, 2, 59, options);
  auto first = f->store->HiddenSubtreeIntervals(0);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(f->store->nok()->buffer_pool()->EvictAll().ok());
  f->store->nok()->buffer_pool()->mutable_stats()->Reset();
  auto second = f->store->HiddenSubtreeIntervals(0);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(f->store->io_stats().page_reads, 0u);  // served from the cache

  // An accessibility update invalidates: hiding the root hides everything.
  ASSERT_TRUE(f->store->SetNodeAccess(0, 0, false).ok());
  auto third = f->store->HiddenSubtreeIntervals(0);
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(third->size(), 1u);
  EXPECT_EQ((*third)[0], (NodeInterval{0, f->store->num_nodes()}));
}

TEST(SecureStoreTest, TinyBufferPoolStillCorrect) {
  // Two frames force constant eviction through every code path (pattern
  // matching, ACL lookups, updates); correctness must not depend on
  // residency, and nothing may deadlock on pins.
  NokStoreOptions options;
  options.max_records_per_page = 32;
  options.buffer_pool_pages = 2;
  auto f = MakeFixture(3000, 2, 61, options);
  for (NodeId x = 0; x < f->store->num_nodes(); x += 13) {
    auto got = f->store->Accessible(0, x);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, f->labeling.Accessible(0, x)) << x;
  }
  ASSERT_TRUE(f->store->SetRangeAccess(100, 900, 1, false).ok());
  for (NodeId x = 100; x < 900; x += 37) {
    auto got = f->store->Accessible(1, x);
    ASSERT_TRUE(got.ok());
    EXPECT_FALSE(*got);
  }
  auto hidden = f->store->HiddenSubtreeIntervals(1);
  ASSERT_TRUE(hidden.ok());
  EXPECT_TRUE(f->store->nok()->CheckIntegrity().ok());
}

TEST(SecureStoreTest, HiddenIntervalsSkipUniformAccessiblePages) {
  NokStoreOptions options;
  options.max_records_per_page = 50;
  // Single subject with everything accessible: no page should be read.
  Document doc;
  XMarkOptions xopts;
  xopts.target_nodes = 3000;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  DenseAccessMap map(static_cast<NodeId>(doc.NumNodes()), 1, true);
  DolLabeling labeling = DolLabeling::Build(map);
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &file, options, &store).ok());
  ASSERT_TRUE(store->nok()->buffer_pool()->EvictAll().ok());
  store->nok()->buffer_pool()->mutable_stats()->Reset();
  auto got = store->HiddenSubtreeIntervals(0);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->empty());
  EXPECT_EQ(store->io_stats().page_reads, 0u);
}

}  // namespace
}  // namespace secxml
