#include "core/accessibility_map.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

TEST(DenseAccessMapTest, DefaultsAndSet) {
  DenseAccessMap map(5, 3, /*default_access=*/false);
  EXPECT_EQ(map.num_nodes(), 5u);
  EXPECT_EQ(map.num_subjects(), 3u);
  EXPECT_FALSE(map.Accessible(0, 0));
  map.Set(1, 2, true);
  EXPECT_TRUE(map.Accessible(1, 2));
  EXPECT_FALSE(map.Accessible(1, 3));
  BitVector acl;
  map.AclFor(2, &acl);
  EXPECT_EQ(acl.ToString(), "010");
}

TEST(DenseAccessMapTest, SetSubtree) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c/><d/></b><e/></a>", &doc).ok());
  DenseAccessMap map(static_cast<NodeId>(doc.NumNodes()), 1);
  map.SetSubtree(doc, 0, /*root=*/1, true);  // subtree of b: b,c,d
  EXPECT_FALSE(map.Accessible(0, 0));
  EXPECT_TRUE(map.Accessible(0, 1));
  EXPECT_TRUE(map.Accessible(0, 2));
  EXPECT_TRUE(map.Accessible(0, 3));
  EXPECT_FALSE(map.Accessible(0, 4));
}

TEST(IntervalAccessMapTest, AccessibleByBinarySearch) {
  IntervalAccessMap map(100, 2);
  map.SetSubjectIntervals(0, {{0, 10}, {50, 60}});
  map.SetSubjectIntervals(1, {{5, 95}});
  ASSERT_TRUE(map.Validate().ok());
  EXPECT_TRUE(map.Accessible(0, 0));
  EXPECT_TRUE(map.Accessible(0, 9));
  EXPECT_FALSE(map.Accessible(0, 10));
  EXPECT_FALSE(map.Accessible(0, 49));
  EXPECT_TRUE(map.Accessible(0, 55));
  EXPECT_FALSE(map.Accessible(0, 99));
  EXPECT_FALSE(map.Accessible(1, 4));
  EXPECT_TRUE(map.Accessible(1, 94));
  EXPECT_FALSE(map.Accessible(1, 95));
}

TEST(IntervalAccessMapTest, ValidateCatchesBadIntervals) {
  {
    IntervalAccessMap map(10, 1);
    map.SetSubjectIntervals(0, {{3, 3}});  // empty
    EXPECT_FALSE(map.Validate().ok());
  }
  {
    IntervalAccessMap map(10, 1);
    map.SetSubjectIntervals(0, {{3, 12}});  // out of range
    EXPECT_FALSE(map.Validate().ok());
  }
  {
    IntervalAccessMap map(10, 1);
    map.SetSubjectIntervals(0, {{0, 5}, {5, 8}});  // adjacent, not maximal
    EXPECT_FALSE(map.Validate().ok());
  }
  {
    IntervalAccessMap map(10, 1);
    map.SetSubjectIntervals(0, {{5, 8}, {0, 3}});  // unsorted
    EXPECT_FALSE(map.Validate().ok());
  }
}

TEST(IntervalAccessMapTest, InitialAclAndEvents) {
  IntervalAccessMap map(20, 3);
  map.SetSubjectIntervals(0, {{0, 5}});
  map.SetSubjectIntervals(1, {{3, 20}});
  map.SetSubjectIntervals(2, {});
  EXPECT_EQ(map.InitialAcl().ToString(), "100");
  std::vector<AclEvent> events = map.CollectEvents();
  // Expected events: (3,1,on), (5,0,off). The end of subject 1's interval is
  // at num_nodes and thus not emitted.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].pos, 3u);
  EXPECT_EQ(events[0].subject, 1u);
  EXPECT_TRUE(events[0].accessible);
  EXPECT_EQ(events[1].pos, 5u);
  EXPECT_EQ(events[1].subject, 0u);
  EXPECT_FALSE(events[1].accessible);
}

TEST(IntervalAccessMapTest, SubsetRenumbersSubjects) {
  IntervalAccessMap map(10, 4);
  map.SetSubjectIntervals(0, {{0, 10}});
  map.SetSubjectIntervals(1, {{2, 4}});
  map.SetSubjectIntervals(2, {{0, 10}});
  map.SetSubjectIntervals(3, {{6, 8}});
  std::vector<SubjectId> subset = {1, 3};
  EXPECT_EQ(map.InitialAcl(&subset).ToString(), "00");
  std::vector<AclEvent> events = map.CollectEvents(&subset);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].pos, 2u);
  EXPECT_EQ(events[0].subject, 0u);  // subject 1 renumbered to 0
  EXPECT_EQ(events[2].pos, 6u);
  EXPECT_EQ(events[2].subject, 1u);  // subject 3 renumbered to 1
}

TEST(IntervalAccessMapTest, EventsSortedByPosition) {
  Rng rng(17);
  IntervalAccessMap map(1000, 10);
  for (SubjectId s = 0; s < 10; ++s) {
    std::vector<NodeInterval> ivs;
    NodeId pos = static_cast<NodeId>(rng.Uniform(50));
    while (pos < 990) {
      NodeId end = pos + 1 + static_cast<NodeId>(rng.Uniform(100));
      end = std::min<NodeId>(end, 1000);
      ivs.push_back({pos, end});
      pos = end + 2 + static_cast<NodeId>(rng.Uniform(50));
    }
    map.SetSubjectIntervals(s, std::move(ivs));
  }
  ASSERT_TRUE(map.Validate().ok());
  std::vector<AclEvent> events = map.CollectEvents();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].pos, events[i].pos);
  }
}

TEST(AccessibilityMapTest, DefaultAclForLoopsSubjects) {
  // IntervalAccessMap overrides AclFor; check it against per-subject checks.
  IntervalAccessMap map(30, 5);
  map.SetSubjectIntervals(0, {{0, 30}});
  map.SetSubjectIntervals(2, {{10, 20}});
  map.SetSubjectIntervals(4, {{15, 16}});
  BitVector acl;
  map.AclFor(15, &acl);
  EXPECT_EQ(acl.ToString(), "10101");
  map.AclFor(0, &acl);
  EXPECT_EQ(acl.ToString(), "10000");
}

}  // namespace
}  // namespace secxml
