#include "core/codebook.h"

#include <gtest/gtest.h>

namespace secxml {
namespace {

BitVector Bits(const std::string& s) {
  BitVector bv(s.size());
  for (size_t i = 0; i < s.size(); ++i) bv.Set(i, s[i] == '1');
  return bv;
}

TEST(CodebookTest, InternDeduplicates) {
  Codebook cb(3);
  AccessCodeId a = cb.Intern(Bits("101"));
  AccessCodeId b = cb.Intern(Bits("011"));
  AccessCodeId c = cb.Intern(Bits("101"));
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(cb.size(), 2u);
}

TEST(CodebookTest, EntryAndAccessible) {
  Codebook cb(3);
  AccessCodeId code = cb.Intern(Bits("101"));
  EXPECT_EQ(cb.Entry(code).ToString(), "101");
  EXPECT_TRUE(cb.Accessible(code, 0));
  EXPECT_FALSE(cb.Accessible(code, 1));
  EXPECT_TRUE(cb.Accessible(code, 2));
}

TEST(CodebookTest, FindWithoutIntern) {
  Codebook cb(2);
  EXPECT_EQ(cb.Find(Bits("10")), kInvalidAccessCode);
  AccessCodeId code = cb.Intern(Bits("10"));
  EXPECT_EQ(cb.Find(Bits("10")), code);
}

TEST(CodebookTest, AddSubjectLikeRejectsUnknownSubject) {
  Codebook cb(2);
  auto r = cb.AddSubjectLike(5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cb.num_subjects(), 2u);  // nothing changed
}

TEST(CodebookTest, AccessibleFailsClosedOnBadInputs) {
  Codebook cb(2);
  AccessCodeId code = cb.Intern(Bits("11"));
  // Out-of-range code or subject (corrupt page bytes, stale caller state)
  // must deny, never read out of bounds.
  EXPECT_FALSE(cb.Accessible(code + 100, 0));
  EXPECT_FALSE(cb.Accessible(kInvalidAccessCode, 0));
  EXPECT_FALSE(cb.Accessible(code, 7));
  EXPECT_TRUE(cb.Accessible(code, 0));  // valid inputs still work
}

TEST(CodebookTest, AddSubjectExtendsEntries) {
  Codebook cb(2);
  AccessCodeId a = cb.Intern(Bits("10"));
  SubjectId s = cb.AddSubject(true);
  EXPECT_EQ(s, 2u);
  EXPECT_EQ(cb.num_subjects(), 3u);
  EXPECT_EQ(cb.Entry(a).ToString(), "101");
  // Existing codes stay stable; new interns use the new width.
  AccessCodeId b = cb.Intern(Bits("110"));
  EXPECT_NE(a, b);
}

TEST(CodebookTest, AddSubjectLikeCopiesColumn) {
  Codebook cb(2);
  AccessCodeId a = cb.Intern(Bits("10"));
  AccessCodeId b = cb.Intern(Bits("01"));
  auto s = cb.AddSubjectLike(0);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, 2u);
  EXPECT_EQ(cb.Entry(a).ToString(), "101");
  EXPECT_EQ(cb.Entry(b).ToString(), "010");
}

TEST(CodebookTest, RemoveSubjectKeepsIdsStable) {
  Codebook cb(3);
  AccessCodeId a = cb.Intern(Bits("110"));
  AccessCodeId b = cb.Intern(Bits("010"));
  AccessCodeId c = cb.Intern(Bits("011"));
  ASSERT_TRUE(cb.RemoveSubject(0).ok());
  EXPECT_EQ(cb.num_subjects(), 2u);
  // All three entries remain (ids embedded in pages must stay valid), but
  // a and b are now duplicates ("10").
  EXPECT_EQ(cb.size(), 3u);
  EXPECT_EQ(cb.Entry(a).ToString(), "10");
  EXPECT_EQ(cb.Entry(b).ToString(), "10");
  EXPECT_EQ(cb.Entry(c).ToString(), "11");
  EXPECT_EQ(cb.CountDistinct(), 2u);
  // Lookup resolves to the first duplicate deterministically.
  EXPECT_EQ(cb.Find(Bits("10")), a);
}

TEST(CodebookTest, RemoveInvalidSubjectFails) {
  Codebook cb(2);
  EXPECT_FALSE(cb.RemoveSubject(5).ok());
}

TEST(CodebookTest, ByteSizeMatchesPaperArithmetic) {
  // Paper Section 5.1.1: 8639 subjects -> ~1080-byte entries; 4000 entries
  // occupy ~4 MB.
  Codebook cb(8639);
  BitVector acl(8639);
  for (uint32_t i = 0; i < 4000; ++i) {
    acl.Set(i % 8639, !acl.Get(i % 8639));
    cb.Intern(acl);
  }
  EXPECT_EQ(cb.size(), 4000u);
  EXPECT_EQ(cb.ByteSize(), 4000u * 1080u);
  EXPECT_NEAR(static_cast<double>(cb.ByteSize()) / (1 << 20), 4.1, 0.1);
}

TEST(CodebookTest, ColumnMatchesPerEntryAccessible) {
  Codebook cb(5);
  std::vector<AccessCodeId> codes;
  codes.push_back(cb.Intern(Bits("10110")));
  codes.push_back(cb.Intern(Bits("01011")));
  codes.push_back(cb.Intern(Bits("11111")));
  codes.push_back(cb.Intern(Bits("00000")));
  for (SubjectId s = 0; s < 5; ++s) {
    BitVector column = cb.Column(s);
    ASSERT_EQ(column.size(), cb.size());
    for (AccessCodeId c : codes) {
      EXPECT_EQ(column.Get(c), cb.Accessible(c, s))
          << "subject " << s << " code " << c;
    }
  }
}

TEST(CodebookTest, ColumnFailsClosedOnUnknownSubject) {
  Codebook cb(2);
  cb.Intern(Bits("11"));
  cb.Intern(Bits("10"));
  BitVector column = cb.Column(9);
  ASSERT_EQ(column.size(), cb.size());
  for (size_t e = 0; e < column.size(); ++e) EXPECT_FALSE(column.Get(e));
}

TEST(CodebookTest, GroupSubjectsByColumnFindsEqualColumns) {
  Codebook cb(4);
  // Subjects 0 and 2 agree on every entry; 1 and 3 each differ somewhere.
  cb.Intern(Bits("1011"));
  cb.Intern(Bits("0100"));
  cb.Intern(Bits("1110"));
  std::vector<SubjectClass> classes =
      GroupSubjectsByColumn(cb, {0, 1, 2, 3});
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_EQ(classes[0].members, (std::vector<SubjectId>{0, 2}));
  EXPECT_EQ(classes[0].representative(), 0u);
  EXPECT_EQ(classes[1].members, (std::vector<SubjectId>{1}));
  EXPECT_EQ(classes[2].members, (std::vector<SubjectId>{3}));
}

TEST(CodebookTest, GroupSubjectsByColumnGroupsUnknownSubjectsTogether) {
  Codebook cb(2);
  cb.Intern(Bits("10"));
  // Unknown subjects all have the fail-closed all-zero column — one class,
  // distinct from subject 0 but identical to subject 1 (denied everywhere).
  std::vector<SubjectClass> classes =
      GroupSubjectsByColumn(cb, {0, 7, 1, 9});
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].members, (std::vector<SubjectId>{0}));
  EXPECT_EQ(classes[1].members, (std::vector<SubjectId>{7, 1, 9}));
}

TEST(CodebookTest, ColumnFingerprintIsAPureContentHash) {
  // The fingerprint is a deterministic function of the column bits alone:
  // independently built codebooks with the same entry sequence agree, and
  // every fingerprint equals hashing the extracted column directly.
  Codebook a(3);
  Codebook b(3);
  for (const char* e : {"101", "011", "110"}) a.Intern(Bits(e));
  for (const char* e : {"101", "011", "110"}) b.Intern(Bits(e));
  for (SubjectId s = 0; s < 3; ++s) {
    EXPECT_EQ(a.ColumnFingerprintOf(s), b.ColumnFingerprintOf(s))
        << "subject " << s;
    EXPECT_EQ(a.ColumnFingerprintOf(s), ColumnFingerprint::Of(a.Column(s)));
  }
}

TEST(CodebookTest, CompactionRenumberingChangesFingerprints) {
  // Compaction dedups entries, which changes every column's content — and
  // therefore its fingerprint. That is the cache-safety property: a result
  // keyed under the old numbering becomes UNREACHABLE after compaction
  // instead of silently aliasing a different visibility class.
  Codebook cb(3);
  AccessCodeId a = cb.Intern(Bits("110"));
  cb.Intern(Bits("010"));
  cb.Intern(Bits("011"));
  ASSERT_TRUE(cb.RemoveSubject(0).ok());  // makes entries a and b duplicates
  ASSERT_GT(cb.size(), cb.CountDistinct());
  ColumnFingerprint before0 = cb.ColumnFingerprintOf(0);
  ColumnFingerprint before1 = cb.ColumnFingerprintOf(1);
  std::vector<AccessCodeId> mapping;
  Codebook compacted = cb.Compacted(&mapping);
  ASSERT_LT(compacted.size(), cb.size());
  EXPECT_NE(compacted.ColumnFingerprintOf(0), before0);
  EXPECT_NE(compacted.ColumnFingerprintOf(1), before1);
  // The compacted book still agrees with a direct column hash, and old
  // codes map onto entries with identical bits.
  EXPECT_EQ(compacted.ColumnFingerprintOf(0),
            ColumnFingerprint::Of(compacted.Column(0)));
  EXPECT_EQ(compacted.Entry(mapping[a]).ToString(), cb.Entry(a).ToString());
}

TEST(CodebookTest, ColumnFingerprintStableUnderAddSubject) {
  Codebook cb(2);
  cb.Intern(Bits("10"));
  cb.Intern(Bits("01"));
  ColumnFingerprint before0 = cb.ColumnFingerprintOf(0);
  ColumnFingerprint before1 = cb.ColumnFingerprintOf(1);
  EXPECT_EQ(cb.AddSubject(false), 2u);
  ASSERT_TRUE(cb.AddSubjectLike(0).ok());
  // Existing columns are untouched by appended subjects, and the copied
  // column fingerprints identically to its source.
  EXPECT_EQ(cb.ColumnFingerprintOf(0), before0);
  EXPECT_EQ(cb.ColumnFingerprintOf(1), before1);
  EXPECT_EQ(cb.ColumnFingerprintOf(3), before0);
}

TEST(CodebookTest, ColumnFingerprintChangesOnSingleBitFlip) {
  Codebook cb(2);
  cb.Intern(Bits("10"));
  cb.Intern(Bits("01"));
  Codebook flipped(2);
  flipped.Intern(Bits("10"));
  flipped.Intern(Bits("11"));  // one bit differs in subject 0's column
  EXPECT_NE(cb.ColumnFingerprintOf(0), flipped.ColumnFingerprintOf(0));
  EXPECT_NE(cb.ColumnFingerprintOf(0), cb.ColumnFingerprintOf(1));
}

TEST(CodebookTest, GroupSubjectsByColumnFillsFingerprints) {
  Codebook cb(4);
  cb.Intern(Bits("1011"));
  cb.Intern(Bits("0100"));
  cb.Intern(Bits("0011"));
  // Columns: s0 = 100, s1 = 010, s2 = s3 = 101 — three classes.
  std::vector<SubjectClass> classes = GroupSubjectsByColumn(cb, {0, 2, 1, 3});
  ASSERT_EQ(classes.size(), 3u);
  for (const SubjectClass& cls : classes) {
    EXPECT_EQ(cls.fingerprint,
              cb.ColumnFingerprintOf(cls.representative()));
    for (SubjectId s : cls.members) {
      EXPECT_EQ(cb.ColumnFingerprintOf(s), cls.fingerprint);
    }
  }
  // Distinct classes carry distinct fingerprints.
  EXPECT_NE(classes[0].fingerprint, classes[1].fingerprint);
  EXPECT_NE(classes[1].fingerprint, classes[2].fingerprint);
}

TEST(CodebookTest, ManyDistinctEntries) {
  Codebook cb(16);
  for (uint32_t v = 0; v < 65536; v += 7) {
    BitVector acl(16);
    for (int i = 0; i < 16; ++i) acl.Set(i, (v >> i) & 1);
    cb.Intern(acl);
  }
  EXPECT_EQ(cb.size(), (65536u + 6) / 7);
  EXPECT_EQ(cb.CountDistinct(), cb.size());
}

}  // namespace
}  // namespace secxml
