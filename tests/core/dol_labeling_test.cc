#include "core/dol_labeling.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/policy.h"
#include "xml/xmark_generator.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

// Figure 1(b)-style example: two subjects over the 12-node tree
// a(b c d e(f g h(i j k l))).
Document Figure2Tree() {
  Document doc;
  EXPECT_TRUE(
      ParseXml("<a><b/><c/><d/><e><f/><g/><h><i/><j/><k/><l/></h></e></a>",
               &doc)
          .ok());
  return doc;
}

TEST(DolLabelingTest, SingleSubjectTransitions) {
  Document doc = Figure2Tree();
  DenseAccessMap map(12, 1);
  // Accessible: a,b,c (0-2) and h..l (7-11); inaccessible: d,e,f,g (3-6).
  for (NodeId n : {0, 1, 2, 7, 8, 9, 10, 11}) map.Set(0, n, true);
  DolLabeling dol = DolLabeling::Build(map);
  ASSERT_TRUE(dol.CheckInvariants().ok());
  // Transitions: 0(+), 3(-), 7(+).
  ASSERT_EQ(dol.num_transitions(), 3u);
  EXPECT_EQ(dol.transitions()[0].node, 0u);
  EXPECT_EQ(dol.transitions()[1].node, 3u);
  EXPECT_EQ(dol.transitions()[2].node, 7u);
  // Only two distinct ACLs -> codebook size 2.
  EXPECT_EQ(dol.codebook().size(), 2u);
  for (NodeId n = 0; n < 12; ++n) {
    EXPECT_EQ(dol.Accessible(0, n), map.Accessible(0, n)) << n;
  }
}

TEST(DolLabelingTest, MultiSubjectSharedCodes) {
  // Two subjects whose rights coincide on runs reuse codebook entries
  // (Figure 1(c): only the distinct ACLs that actually occur are stored).
  Document doc = Figure2Tree();
  DenseAccessMap map(12, 2);
  for (NodeId n = 0; n < 12; ++n) map.Set(0, n, n < 6);
  for (NodeId n = 0; n < 12; ++n) map.Set(1, n, n < 6 || n >= 9);
  DolLabeling dol = DolLabeling::Build(map);
  ASSERT_TRUE(dol.CheckInvariants().ok());
  // ACL runs: [0,6)="11", [6,9)="00", [9,12)="01" -> 3 transitions, 3 codes.
  EXPECT_EQ(dol.num_transitions(), 3u);
  EXPECT_EQ(dol.codebook().size(), 3u);
}

TEST(DolLabelingTest, UniformDocumentHasOneTransition) {
  DenseAccessMap map(100, 4, /*default_access=*/true);
  DolLabeling dol = DolLabeling::Build(map);
  EXPECT_EQ(dol.num_transitions(), 1u);
  EXPECT_EQ(dol.codebook().size(), 1u);
  EXPECT_TRUE(dol.Accessible(3, 99));
}

TEST(DolLabelingTest, BuildFromEventsMatchesDenseBuild) {
  Rng rng(5);
  XMarkOptions opts;
  opts.target_nodes = 3000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
  NodeId n = static_cast<NodeId>(doc.NumNodes());
  constexpr size_t kSubjects = 6;
  IntervalAccessMap imap(n, kSubjects);
  DenseAccessMap dmap(n, kSubjects);
  for (SubjectId s = 0; s < kSubjects; ++s) {
    std::vector<AclSeed> seeds;
    for (int i = 0; i < 25; ++i) {
      seeds.push_back({static_cast<NodeId>(rng.Uniform(n)),
                       rng.Bernoulli(0.5)});
    }
    auto ivs = PropagateMostSpecificOverride(doc, seeds);
    for (const NodeInterval& iv : ivs) {
      for (NodeId x = iv.begin; x < iv.end; ++x) dmap.Set(s, x, true);
    }
    imap.SetSubjectIntervals(s, std::move(ivs));
  }
  ASSERT_TRUE(imap.Validate().ok());
  DolLabeling from_dense = DolLabeling::Build(dmap);
  DolLabeling from_events = DolLabeling::BuildFromEvents(
      n, imap.InitialAcl(), imap.CollectEvents());
  ASSERT_TRUE(from_events.CheckInvariants().ok());
  ASSERT_EQ(from_events.num_transitions(), from_dense.num_transitions());
  EXPECT_EQ(from_events.codebook().size(), from_dense.codebook().size());
  for (size_t i = 0; i < from_dense.transitions().size(); ++i) {
    EXPECT_EQ(from_events.transitions()[i].node,
              from_dense.transitions()[i].node);
  }
  for (NodeId x = 0; x < n; x += 13) {
    for (SubjectId s = 0; s < kSubjects; ++s) {
      ASSERT_EQ(from_events.Accessible(s, x), dmap.Accessible(s, x));
    }
  }
}

TEST(DolLabelingTest, CodeAtBinarySearch) {
  DenseAccessMap map(50, 1);
  for (NodeId n = 10; n < 20; ++n) map.Set(0, n, true);
  for (NodeId n = 35; n < 50; ++n) map.Set(0, n, true);
  DolLabeling dol = DolLabeling::Build(map);
  ASSERT_EQ(dol.num_transitions(), 4u);
  EXPECT_EQ(dol.CodeAt(0), dol.CodeAt(9));
  EXPECT_EQ(dol.CodeAt(10), dol.CodeAt(19));
  EXPECT_EQ(dol.CodeAt(20), dol.CodeAt(0));
  EXPECT_EQ(dol.CodeAt(35), dol.CodeAt(49));
  EXPECT_NE(dol.CodeAt(0), dol.CodeAt(10));
}

// ---------------------------------------------------------------------
// Updates and Proposition 1.

TEST(DolLabelingTest, CodeAtFailsClosedOnBadInputs) {
  // An empty labeling or an out-of-range node yields the invalid code,
  // which no codebook entry backs — Accessible() then denies.
  DolLabeling empty;
  EXPECT_EQ(empty.CodeAt(0), kInvalidAccessCode);
  DenseAccessMap map(10, 1);
  for (NodeId n = 0; n < 10; ++n) map.Set(0, n, n < 5);
  DolLabeling dol = DolLabeling::Build(map);
  EXPECT_EQ(dol.CodeAt(10), kInvalidAccessCode);
  EXPECT_EQ(dol.CodeAt(0xffffffffu), kInvalidAccessCode);
  EXPECT_NE(dol.CodeAt(9), kInvalidAccessCode);
  EXPECT_FALSE(dol.Accessible(0, 10));
}

TEST(DolLabelingTest, SetNodeAccessCreatesAtMostTwoTransitions) {
  DenseAccessMap map(20, 2, true);
  DolLabeling dol = DolLabeling::Build(map);
  ASSERT_EQ(dol.num_transitions(), 1u);
  ASSERT_TRUE(dol.SetNodeAccess(7, 0, false).ok());
  ASSERT_TRUE(dol.CheckInvariants().ok());
  // New transitions at 7 and at 8 (revert): 1 + 2 = 3.
  EXPECT_EQ(dol.num_transitions(), 3u);
  EXPECT_FALSE(dol.Accessible(0, 7));
  EXPECT_TRUE(dol.Accessible(1, 7));
  EXPECT_TRUE(dol.Accessible(0, 6));
  EXPECT_TRUE(dol.Accessible(0, 8));
}

TEST(DolLabelingTest, RedundantUpdateIsIdempotent) {
  DenseAccessMap map(20, 1, true);
  DolLabeling dol = DolLabeling::Build(map);
  ASSERT_TRUE(dol.SetNodeAccess(5, 0, true).ok());  // already accessible
  EXPECT_EQ(dol.num_transitions(), 1u);
  EXPECT_EQ(dol.codebook().size(), 1u);
}

TEST(DolLabelingTest, RangeUpdateMergesRuns) {
  DenseAccessMap map(30, 1);
  for (NodeId n = 10; n < 20; ++n) map.Set(0, n, true);
  DolLabeling dol = DolLabeling::Build(map);
  ASSERT_EQ(dol.num_transitions(), 3u);
  // Granting [0, 10) merges with the existing accessible run.
  ASSERT_TRUE(dol.SetRangeAccess(0, 10, 0, true).ok());
  ASSERT_TRUE(dol.CheckInvariants().ok());
  EXPECT_EQ(dol.num_transitions(), 2u);  // [0,20)+ [20,30)-
  EXPECT_TRUE(dol.Accessible(0, 0));
  EXPECT_TRUE(dol.Accessible(0, 19));
  EXPECT_FALSE(dol.Accessible(0, 20));
}

TEST(DolLabelingTest, UpdateValidation) {
  DenseAccessMap map(10, 1);
  DolLabeling dol = DolLabeling::Build(map);
  EXPECT_FALSE(dol.SetRangeAccess(5, 5, 0, true).ok());   // empty range
  EXPECT_FALSE(dol.SetRangeAccess(5, 11, 0, true).ok());  // beyond end
  EXPECT_FALSE(dol.SetRangeAccess(0, 1, 3, true).ok());   // bad subject
}

TEST(DolLabelingTest, InsertNodesSplicesFragment) {
  DenseAccessMap map(10, 1, true);
  DolLabeling dol = DolLabeling::Build(map);
  DenseAccessMap frag_map(4, 1);
  frag_map.Set(0, 1, true);
  frag_map.Set(0, 2, true);
  DolLabeling frag = DolLabeling::Build(frag_map);  // -++- pattern
  ASSERT_TRUE(dol.InsertNodes(5, frag).ok());
  ASSERT_TRUE(dol.CheckInvariants().ok());
  EXPECT_EQ(dol.num_nodes(), 14u);
  // Layout: [0,5)+ [5]- [6,8)+ [8]- [9,14)+
  std::vector<bool> want = {true, true, true,  true,  true,  false, true,
                            true, false, true, true,  true,  true,  true};
  for (NodeId n = 0; n < 14; ++n) {
    EXPECT_EQ(dol.Accessible(0, n), want[n]) << n;
  }
}

TEST(DolLabelingTest, InsertRejectsSubjectMismatch) {
  DenseAccessMap map(10, 2);
  DolLabeling dol = DolLabeling::Build(map);
  DenseAccessMap frag_map(3, 1);
  DolLabeling frag = DolLabeling::Build(frag_map);
  EXPECT_FALSE(dol.InsertNodes(0, frag).ok());
}

TEST(DolLabelingTest, DeleteNodesClosesGap) {
  DenseAccessMap map(20, 1);
  for (NodeId n = 5; n < 15; ++n) map.Set(0, n, true);
  DolLabeling dol = DolLabeling::Build(map);
  // Delete [3, 12): removes the +run's start; remaining + nodes are 12..14,
  // which shift to 3..5.
  ASSERT_TRUE(dol.DeleteNodes(3, 12).ok());
  ASSERT_TRUE(dol.CheckInvariants().ok());
  EXPECT_EQ(dol.num_nodes(), 11u);
  for (NodeId n = 0; n < 11; ++n) {
    EXPECT_EQ(dol.Accessible(0, n), n >= 3 && n < 6) << n;
  }
}

TEST(DolLabelingTest, DeleteEntireDocumentRejected) {
  DenseAccessMap map(5, 1);
  DolLabeling dol = DolLabeling::Build(map);
  EXPECT_FALSE(dol.DeleteNodes(0, 5).ok());
}

// Property test: random updates never add more than 2 transitions beyond
// those contributed by inserted fragments (Proposition 1), and the labeling
// always agrees with a reference model.
class DolUpdatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DolUpdatePropertyTest, Proposition1AndEquivalence) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 3);
  constexpr size_t kSubjects = 3;
  NodeId n = 200;
  // Reference: per-node ACLs as bool matrix.
  std::vector<BitVector> ref(n, BitVector(kSubjects));
  DenseAccessMap init(n, kSubjects);
  for (SubjectId s = 0; s < kSubjects; ++s) {
    NodeId pos = 0;
    while (pos < n) {
      NodeId end = std::min<NodeId>(
          n, pos + 1 + static_cast<NodeId>(rng.Uniform(40)));
      bool v = rng.Bernoulli(0.5);
      for (NodeId x = pos; x < end; ++x) {
        if (v) {
          init.Set(s, x, true);
          ref[x].Set(s, true);
        }
      }
      pos = end;
    }
  }
  DolLabeling dol = DolLabeling::Build(init);

  for (int round = 0; round < 60; ++round) {
    int op = static_cast<int>(rng.Uniform(3));
    size_t before = dol.num_transitions();
    if (op == 0) {
      // Range accessibility update.
      NodeId begin = static_cast<NodeId>(rng.Uniform(dol.num_nodes()));
      NodeId end = begin + 1 +
                   static_cast<NodeId>(rng.Uniform(dol.num_nodes() - begin));
      SubjectId s = static_cast<SubjectId>(rng.Uniform(kSubjects));
      bool v = rng.Bernoulli(0.5);
      ASSERT_TRUE(dol.SetRangeAccess(begin, end, s, v).ok());
      for (NodeId x = begin; x < end; ++x) ref[x].Set(s, v);
      EXPECT_LE(dol.num_transitions(), before + 2) << "round " << round;
    } else if (op == 1) {
      // Structural insert of a small random fragment.
      NodeId count = 1 + static_cast<NodeId>(rng.Uniform(10));
      DenseAccessMap frag_map(count, kSubjects);
      std::vector<BitVector> frag_ref(count, BitVector(kSubjects));
      for (NodeId x = 0; x < count; ++x) {
        for (SubjectId s = 0; s < kSubjects; ++s) {
          if (rng.Bernoulli(0.4)) {
            frag_map.Set(s, x, true);
            frag_ref[x].Set(s, true);
          }
        }
      }
      DolLabeling frag = DolLabeling::Build(frag_map);
      size_t frag_transitions = frag.num_transitions();
      NodeId pos = static_cast<NodeId>(rng.Uniform(dol.num_nodes() + 1));
      ASSERT_TRUE(dol.InsertNodes(pos, frag).ok());
      ref.insert(ref.begin() + pos, frag_ref.begin(), frag_ref.end());
      EXPECT_LE(dol.num_transitions(), before + frag_transitions + 2)
          << "round " << round;
    } else if (dol.num_nodes() > 30) {
      // Structural delete.
      NodeId begin = static_cast<NodeId>(rng.Uniform(dol.num_nodes() - 20));
      NodeId end = begin + 1 + static_cast<NodeId>(rng.Uniform(15));
      ASSERT_TRUE(dol.DeleteNodes(begin, end).ok());
      ref.erase(ref.begin() + begin, ref.begin() + end);
      EXPECT_LE(dol.num_transitions(), before + 2) << "round " << round;
    }
    ASSERT_TRUE(dol.CheckInvariants().ok()) << "round " << round;
    ASSERT_EQ(dol.num_nodes(), ref.size());
    for (NodeId x = 0; x < dol.num_nodes(); ++x) {
      for (SubjectId s = 0; s < kSubjects; ++s) {
        ASSERT_EQ(dol.Accessible(s, x), ref[x].Get(s))
            << "round " << round << " node " << x << " subject " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, DolUpdatePropertyTest,
                         ::testing::Range(0, 10));

TEST(DolLabelingTest, StatsArithmetic) {
  DenseAccessMap map(100, 16);
  for (NodeId x = 40; x < 60; ++x) map.Set(2, x, true);
  DolLabeling dol = DolLabeling::Build(map);
  // Runs: [0,40) [40,60) [60,100) -> 3 transitions, 2 distinct codes.
  DolLabeling::Stats s = dol.ComputeStats(/*code_bytes=*/2);
  EXPECT_EQ(s.num_transitions, 3u);
  EXPECT_EQ(s.codebook_entries, 2u);
  EXPECT_EQ(s.codebook_bytes, 2u * 2u);  // 16 subjects -> 2 bytes per entry
  EXPECT_EQ(s.transition_bytes, 6u);
  EXPECT_EQ(s.total_bytes, 10u);
}

}  // namespace
}  // namespace secxml
