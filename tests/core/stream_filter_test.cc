#include "core/stream_filter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/policy.h"
#include "xml/sax.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

DolLabeling SingleSubjectLabeling(const Document& doc,
                                  const std::vector<bool>& accessible) {
  DenseAccessMap map(static_cast<NodeId>(doc.NumNodes()), 1);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (accessible[n]) map.Set(0, n, true);
  }
  return DolLabeling::Build(map);
}

std::string FilterStream(const std::string& xml, const DolLabeling& labeling) {
  std::string out;
  SecureStreamFilter filter(&labeling, 0, &out);
  Status st = ParseXmlStream(xml, &filter);
  EXPECT_TRUE(st.ok()) << st;
  return out;
}

TEST(SecureStreamFilterTest, PassesEverythingWhenAllAccessible) {
  const std::string xml = "<a><b>hi</b><c x=\"1\"/></a>";
  Document doc;
  ASSERT_TRUE(ParseXml(xml, &doc).ok());
  DolLabeling labeling =
      SingleSubjectLabeling(doc, std::vector<bool>(doc.NumNodes(), true));
  EXPECT_EQ(FilterStream(xml, labeling), xml);
}

TEST(SecureStreamFilterTest, HiddenRootYieldsEmptyOutput) {
  const std::string xml = "<a><b/></a>";
  Document doc;
  ASSERT_TRUE(ParseXml(xml, &doc).ok());
  DolLabeling labeling = SingleSubjectLabeling(doc, {false, true});
  EXPECT_EQ(FilterStream(xml, labeling), "");
}

TEST(SecureStreamFilterTest, SuppressesWholeSubtree) {
  // a(b(c) d): hide b; c disappears with it even though c is accessible.
  const std::string xml = "<a><b><c/></b><d/></a>";
  Document doc;
  ASSERT_TRUE(ParseXml(xml, &doc).ok());
  DolLabeling labeling =
      SingleSubjectLabeling(doc, {true, false, true, true});
  EXPECT_EQ(FilterStream(xml, labeling), "<a><d/></a>");
}

TEST(SecureStreamFilterTest, HiddenAttributeOmitted) {
  const std::string xml = R"(<a x="1" y="2"><b/></a>)";
  Document doc;
  ASSERT_TRUE(ParseXml(xml, &doc).ok());
  // Nodes: a, @x, @y, b. Hide @x.
  DolLabeling labeling =
      SingleSubjectLabeling(doc, {true, false, true, true});
  EXPECT_EQ(FilterStream(xml, labeling), R"(<a y="2"><b/></a>)");
}

TEST(SecureStreamFilterTest, TextAndEntitiesSurvive) {
  const std::string xml = "<a>x &lt; y<b>&amp;</b></a>";
  Document doc;
  ASSERT_TRUE(ParseXml(xml, &doc).ok());
  DolLabeling labeling =
      SingleSubjectLabeling(doc, std::vector<bool>(doc.NumNodes(), true));
  std::string out = FilterStream(xml, labeling);
  Document round;
  ASSERT_TRUE(ParseXml(out, &round).ok());
  EXPECT_EQ(round.Value(0), "x < y");
  EXPECT_EQ(round.Value(1), "&");
}

TEST(SecureStreamFilterTest, StreamTooLongForLabelingFails) {
  const std::string xml = "<a><b/></a>";
  DenseAccessMap map(1, 1, true);
  DolLabeling labeling = DolLabeling::Build(map);
  std::string out;
  SecureStreamFilter filter(&labeling, 0, &out);
  EXPECT_FALSE(ParseXmlStream(xml, &filter).ok());
}

TEST(SecureStreamFilterTest, ViewOnOffByteIdentical) {
  // Differential: the compiled byte-table path (use_view=true, default) and
  // the direct codebook path must emit byte-identical output. This is the
  // regression for the stream filter's private access-check copy drifting
  // from the query path — both now run through LabelStreamCursor.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    XMarkOptions opts;
    opts.seed = seed;
    opts.target_nodes = 2000;
    Document doc;
    ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
    std::string xml = WriteXml(doc);

    Rng rng(seed * 37);
    std::vector<AclSeed> seeds = {{0, rng.Bernoulli(0.8)}};
    for (int i = 0; i < 25; ++i) {
      seeds.push_back({static_cast<NodeId>(rng.Uniform(doc.NumNodes())),
                       rng.Bernoulli(0.5)});
    }
    IntervalAccessMap map(static_cast<NodeId>(doc.NumNodes()), 1);
    map.SetSubjectIntervals(0, PropagateMostSpecificOverride(doc, seeds));
    DolLabeling labeling = DolLabeling::BuildFromEvents(
        map.num_nodes(), map.InitialAcl(), map.CollectEvents());

    std::string with_view, without_view;
    SecureStreamFilter on(&labeling, 0, &with_view, /*use_view=*/true);
    SecureStreamFilter off(&labeling, 0, &without_view, /*use_view=*/false);
    ASSERT_TRUE(ParseXmlStream(xml, &on).ok());
    ASSERT_TRUE(ParseXmlStream(xml, &off).ok());
    EXPECT_EQ(with_view, without_view) << "seed " << seed;
    // Both paths consult the labels equally often; only the lookup
    // machinery differs.
    EXPECT_EQ(on.exec_stats().nodes_scanned, off.exec_stats().nodes_scanned)
        << "seed " << seed;
    EXPECT_EQ(on.exec_stats().codes_checked, off.exec_stats().codes_checked);
  }
}

TEST(SecureStreamFilterTest, MatchesMaterializedFilteredWriter) {
  // Property: the one-pass stream filter and the in-memory filtered writer
  // produce structurally identical views.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    XMarkOptions opts;
    opts.seed = seed;
    opts.target_nodes = 2500;
    Document doc;
    ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
    std::string xml = WriteXml(doc);

    Rng rng(seed * 71);
    std::vector<AclSeed> seeds = {{0, true}};
    for (int i = 0; i < 30; ++i) {
      seeds.push_back({static_cast<NodeId>(rng.Uniform(doc.NumNodes())),
                       rng.Bernoulli(0.5)});
    }
    IntervalAccessMap map(static_cast<NodeId>(doc.NumNodes()), 1);
    map.SetSubjectIntervals(0, PropagateMostSpecificOverride(doc, seeds));
    DolLabeling labeling = DolLabeling::BuildFromEvents(
        map.num_nodes(), map.InitialAcl(), map.CollectEvents());

    // Reference: visibility with whole-subtree pruning.
    std::vector<bool> visible(doc.NumNodes());
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      NodeId p = doc.Parent(n);
      visible[n] = labeling.Accessible(0, n) &&
                   (p == kInvalidNode || visible[p]);
    }
    std::string expected = WriteXmlFiltered(
        doc, [&visible](NodeId n) { return visible[n]; });

    std::string streamed = FilterStream(xml, labeling);
    if (expected.empty()) {
      EXPECT_TRUE(streamed.empty());
      continue;
    }
    Document a, b;
    ASSERT_TRUE(ParseXml(expected, &a).ok());
    ASSERT_TRUE(ParseXml(streamed, &b).ok()) << streamed.substr(0, 200);
    ASSERT_EQ(a.NumNodes(), b.NumNodes()) << "seed " << seed;
    for (NodeId n = 0; n < a.NumNodes(); ++n) {
      ASSERT_EQ(a.TagName(n), b.TagName(n));
      ASSERT_EQ(a.SubtreeSize(n), b.SubtreeSize(n));
      ASSERT_EQ(a.Value(n), b.Value(n));
    }
  }
}

}  // namespace
}  // namespace secxml
