// EpochManager unit tests: pin/unpin accounting, RCU-style grace-period
// reclamation ordering, nested PinAt adoption, and the stats invariants the
// concurrency suites later assert at scale (pins == unpins, retired ==
// reclaimed, active_pins() back to zero).

#include "core/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace secxml {
namespace {

TEST(EpochTest, StartsAtOneAndAdvances) {
  EpochManager em;
  EXPECT_EQ(em.current(), 1u);
  EXPECT_EQ(em.Advance(), 2u);
  EXPECT_EQ(em.Advance(), 3u);
  EXPECT_EQ(em.current(), 3u);
  EXPECT_EQ(em.stats().advances, 2u);
}

TEST(EpochTest, RetireWithNoPinsReclaimsImmediately) {
  EpochManager em;
  bool ran = false;
  em.Retire(em.current(), [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(em.stats().retired, 1u);
  EXPECT_EQ(em.stats().reclaimed, 1u);
}

TEST(EpochTest, RetireWaitsForOldestPin) {
  EpochManager em;
  EpochManager::Epoch e1 = em.PinCurrent();
  EXPECT_EQ(e1, 1u);
  em.Advance();  // writer committed: epoch 2
  bool ran = false;
  // Resources of epoch 1 can only go once no pin at epoch <= 1 remains.
  em.Retire(e1, [&] { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(em.oldest_pinned(), 1u);

  // A later pin does not unblock the old epoch's callback.
  EpochManager::Epoch e2 = em.PinCurrent();
  EXPECT_EQ(e2, 2u);
  em.Unpin(e2);
  EXPECT_FALSE(ran);

  em.Unpin(e1);
  EXPECT_TRUE(ran);
  EXPECT_EQ(em.active_pins(), 0u);
  EXPECT_EQ(em.oldest_pinned(), 0u);
}

TEST(EpochTest, ReclaimRunsInEpochOrderAsPinsDrain) {
  EpochManager em;
  EpochManager::Epoch e1 = em.PinCurrent();
  em.Advance();
  EpochManager::Epoch e2 = em.PinCurrent();
  em.Advance();

  std::vector<int> order;
  em.Retire(e1, [&] { order.push_back(1); });
  em.Retire(e2, [&] { order.push_back(2); });
  EXPECT_TRUE(order.empty());

  // Releasing the newer pin frees nothing: epoch 1's reader still holds a
  // pin at an epoch <= both retire epochs.
  em.Unpin(e2);
  EXPECT_TRUE(order.empty());
  // Releasing the oldest pin completes both grace periods at once.
  em.Unpin(e1);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EpochTest, NestedPinAtAdoptsOuterEpoch) {
  EpochManager em;
  EpochManager::Epoch outer = em.PinCurrent();
  em.PinAt(outer);  // nested snapshot adopting the outer pin's epoch
  em.Advance();
  bool ran = false;
  em.Retire(outer, [&] { ran = true; });
  em.Unpin(outer);
  EXPECT_FALSE(ran) << "inner pin must still protect the epoch";
  em.Unpin(outer);
  EXPECT_TRUE(ran);
  EXPECT_EQ(em.stats().pins, 2u);
  EXPECT_EQ(em.stats().unpins, 2u);
}

TEST(EpochTest, RetireCallbackMayRetireAgain) {
  // Callbacks run outside the internal mutex, so a reclaim that itself
  // retires (e.g. a codebook whose destructor releases pooled pages through
  // another epoch-managed object) must not deadlock.
  EpochManager em;
  bool inner = false;
  em.Retire(em.current(), [&] {
    em.Retire(em.current(), [&] { inner = true; });
  });
  EXPECT_TRUE(inner);
  EXPECT_EQ(em.stats().reclaimed, 2u);
}

TEST(EpochTest, ConcurrentPinUnpinNeverLeaks) {
  EpochManager em;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::atomic<uint64_t> reclaims{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&em, &reclaims, t] {
      for (int i = 0; i < kIters; ++i) {
        if (t == 0) {
          // One writer advancing and retiring.
          EpochManager::Epoch old_e = em.current();
          em.Advance();
          em.Retire(old_e, [&reclaims] {
            reclaims.fetch_add(1, std::memory_order_relaxed);
          });
        } else {
          EpochManager::Epoch e = em.PinCurrent();
          em.Unpin(e);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(em.active_pins(), 0u);
  EXPECT_EQ(em.stats().pins, em.stats().unpins);
  // With every pin released, every retired callback must have run.
  EXPECT_EQ(reclaims.load(), static_cast<uint64_t>(kIters));
  EXPECT_EQ(em.stats().retired, em.stats().reclaimed);
}

}  // namespace
}  // namespace secxml
