#include <gtest/gtest.h>

#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

struct Fixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

std::unique_ptr<Fixture> MakeFixture(uint32_t nodes, size_t subjects) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions xopts;
  xopts.target_nodes = nodes;
  EXPECT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = 77;
  IntervalAccessMap map = GenerateSyntheticAclMap(f->doc, subjects, aopts);
  f->labeling = DolLabeling::BuildFromEvents(map.num_nodes(), map.InitialAcl(),
                                             map.CollectEvents());
  EXPECT_TRUE(
      SecureStore::Build(f->doc, f->labeling, &f->file, {}, &f->store).ok());
  return f;
}

TEST(SecureStorePersistenceTest, RoundTripsCodebookAndCodes) {
  auto f = MakeFixture(4000, 5);
  ASSERT_TRUE(f->store->Persist().ok());
  std::unique_ptr<SecureStore> reopened;
  ASSERT_TRUE(SecureStore::Open(&f->file, {}, &reopened).ok());
  ASSERT_EQ(reopened->codebook().size(), f->store->codebook().size());
  ASSERT_EQ(reopened->codebook().num_subjects(), 5u);
  for (NodeId n = 0; n < f->store->num_nodes(); n += 11) {
    for (SubjectId s = 0; s < 5; ++s) {
      auto a = f->store->Accessible(s, n);
      auto b = reopened->Accessible(s, n);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(*a, *b) << n << " " << s;
    }
  }
}

TEST(SecureStorePersistenceTest, ReopenedStoreEvaluatesQueries) {
  auto f = MakeFixture(6000, 3);
  QueryEvaluator eval_before(f->store.get());
  EvalOptions secure;
  secure.semantics = AccessSemantics::kBinding;
  auto want = eval_before.EvaluateXPath("//item[location='africa']/name",
                                        secure);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(f->store->Persist().ok());

  std::unique_ptr<SecureStore> reopened;
  ASSERT_TRUE(SecureStore::Open(&f->file, {}, &reopened).ok());
  QueryEvaluator eval_after(reopened.get());
  // The value predicate works because the value pool is persisted too.
  auto got = eval_after.EvaluateXPath("//item[location='africa']/name",
                                      secure);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->answers, want->answers);
}

TEST(SecureStorePersistenceTest, SurvivesUpdatesAndSubjectChurn) {
  auto f = MakeFixture(4000, 4);
  ASSERT_TRUE(f->store->SetSubtreeAccess(500, 1, false).ok());
  auto added_or = f->store->AddSubjectLike(0);
  ASSERT_TRUE(added_or.ok());
  SubjectId added = *added_or;
  ASSERT_TRUE(f->store->RemoveSubject(2).ok());
  ASSERT_TRUE(f->store->Persist().ok());

  std::unique_ptr<SecureStore> reopened;
  ASSERT_TRUE(SecureStore::Open(&f->file, {}, &reopened).ok());
  ASSERT_EQ(reopened->codebook().num_subjects(),
            f->store->codebook().num_subjects());
  for (NodeId n = 0; n < f->store->num_nodes(); n += 17) {
    for (SubjectId s = 0; s < reopened->codebook().num_subjects(); ++s) {
      auto a = f->store->Accessible(s, n);
      auto b = reopened->Accessible(s, n);
      ASSERT_TRUE(a.ok() && b.ok());
      ASSERT_EQ(*a, *b) << n << " " << s << " (added=" << added << ")";
    }
  }
}

TEST(SecureStorePersistenceTest, OpenRejectsStoreWithoutCodebook) {
  // A raw NokStore snapshot has no codebook in its user blob.
  auto f = MakeFixture(1000, 2);
  ASSERT_TRUE(f->store->nok()->Persist().ok());
  std::unique_ptr<SecureStore> reopened;
  EXPECT_FALSE(SecureStore::Open(&f->file, {}, &reopened).ok());
}

}  // namespace
}  // namespace secxml
