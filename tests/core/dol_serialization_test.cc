#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

DolLabeling MakeLabeling(uint32_t nodes, size_t subjects, uint64_t seed) {
  XMarkOptions xopts;
  xopts.seed = seed;
  xopts.target_nodes = nodes;
  Document doc;
  EXPECT_TRUE(GenerateXMark(xopts, &doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = seed * 3 + 1;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, subjects, aopts);
  return DolLabeling::BuildFromEvents(map.num_nodes(), map.InitialAcl(),
                                      map.CollectEvents());
}

TEST(DolSerializationTest, RoundTrip) {
  DolLabeling dol = MakeLabeling(4000, 5, 3);
  std::vector<uint8_t> bytes = dol.Serialize();
  auto loaded = DolLabeling::Deserialize(bytes);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->num_nodes(), dol.num_nodes());
  ASSERT_EQ(loaded->num_transitions(), dol.num_transitions());
  ASSERT_EQ(loaded->codebook().size(), dol.codebook().size());
  for (NodeId n = 0; n < dol.num_nodes(); n += 7) {
    for (SubjectId s = 0; s < 5; ++s) {
      ASSERT_EQ(loaded->Accessible(s, n), dol.Accessible(s, n))
          << n << " " << s;
    }
  }
  ASSERT_TRUE(loaded->CheckInvariants().ok());
}

TEST(DolSerializationTest, RoundTripManySubjects) {
  // Subject counts straddling word boundaries exercise the bit packing.
  for (size_t subjects : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 130u}) {
    DolLabeling dol = MakeLabeling(800, subjects, subjects);
    auto loaded = DolLabeling::Deserialize(dol.Serialize());
    ASSERT_TRUE(loaded.ok()) << subjects;
    ASSERT_EQ(loaded->codebook().num_subjects(), subjects);
    for (NodeId n = 0; n < dol.num_nodes(); n += 13) {
      for (SubjectId s = 0; s < subjects; ++s) {
        ASSERT_EQ(loaded->Accessible(s, n), dol.Accessible(s, n))
            << subjects << " " << n << " " << s;
      }
    }
  }
}

TEST(DolSerializationTest, SizeMatchesStatsArithmetic) {
  DolLabeling dol = MakeLabeling(4000, 16, 9);
  std::vector<uint8_t> bytes = dol.Serialize();
  // DOL header (3 u32) + transitions (8 B each) + codebook blob length (u32)
  // + codebook blob (3 u32 header + 2 B per entry at 16 subjects).
  size_t expected = 12 + dol.num_transitions() * 8 + 4 + 12 +
                    dol.codebook().size() * 2;
  EXPECT_EQ(bytes.size(), expected);
}

TEST(DolSerializationTest, RejectsCorruptInput) {
  DolLabeling dol = MakeLabeling(500, 3, 1);
  std::vector<uint8_t> bytes = dol.Serialize();
  {
    std::vector<uint8_t> bad = bytes;
    bad[0] ^= 0xff;  // magic
    EXPECT_FALSE(DolLabeling::Deserialize(bad).ok());
  }
  {
    std::vector<uint8_t> bad(bytes.begin(), bytes.begin() + 10);  // truncated
    EXPECT_FALSE(DolLabeling::Deserialize(bad).ok());
  }
  {
    std::vector<uint8_t> bad = bytes;
    bad.resize(bad.size() - 1);  // truncated codebook
    EXPECT_FALSE(DolLabeling::Deserialize(bad).ok());
  }
  EXPECT_FALSE(DolLabeling::Deserialize({}).ok());
}

TEST(DolSerializationTest, DuplicateCodebookEntriesRoundTripVerbatim) {
  // Subject removal leaves duplicate codebook entries with distinct ids;
  // serialization must preserve them exactly (codes embedded in pages would
  // dangle otherwise).
  DenseAccessMap map(4, 2);
  map.Set(0, 0, true);               // node 0: "10"
  map.Set(0, 2, true);               // node 2: "11"
  map.Set(1, 2, true);
  DolLabeling dol = DolLabeling::Build(map);
  ASSERT_EQ(dol.codebook().size(), 3u);  // "10", "00", "11"
  // Removing subject 1 collapses "10" and "11" into duplicates.
  ASSERT_TRUE(dol.mutable_codebook()->RemoveSubject(1).ok());
  ASSERT_LT(dol.codebook().CountDistinct(), dol.codebook().size());
  auto loaded = DolLabeling::Deserialize(dol.Serialize());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->codebook().size(), 3u);
  EXPECT_EQ(loaded->codebook().CountDistinct(), 2u);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(loaded->Accessible(0, n), dol.Accessible(0, n)) << n;
  }
}

}  // namespace
}  // namespace secxml
