#include "core/policy.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/xmark_generator.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

// Reference implementation: per-node nearest-seeded-ancestor-or-self.
std::vector<bool> MsoBruteForce(const Document& doc,
                                const std::vector<AclSeed>& seeds,
                                bool default_access) {
  std::vector<int> label(doc.NumNodes(), -1);
  for (const AclSeed& s : seeds) label[s.node] = s.accessible ? 1 : 0;
  std::vector<bool> out(doc.NumNodes());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    bool value = default_access;
    for (NodeId a = n;; a = doc.Parent(a)) {
      if (label[a] != -1) {
        value = label[a] == 1;
        break;
      }
      if (doc.Parent(a) == kInvalidNode) break;
    }
    out[n] = value;
  }
  return out;
}

std::vector<bool> IntervalsToBits(const std::vector<NodeInterval>& ivs,
                                  size_t n) {
  std::vector<bool> out(n, false);
  for (const NodeInterval& iv : ivs) {
    for (NodeId i = iv.begin; i < iv.end; ++i) out[i] = true;
  }
  return out;
}

TEST(PolicyTest, NoSeedsYieldsDefault) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/><c/></a>", &doc).ok());
  EXPECT_TRUE(PropagateMostSpecificOverride(doc, {}, false).empty());
  auto all = PropagateMostSpecificOverride(doc, {}, true);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0], (NodeInterval{0, 3}));
}

TEST(PolicyTest, RootSeedCoversEverything) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c/></b><d/></a>", &doc).ok());
  auto ivs = PropagateMostSpecificOverride(doc, {{0, true}});
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0], (NodeInterval{0, 4}));
}

TEST(PolicyTest, OverrideInsideSubtree) {
  // a(b(c d) e); grant at a, deny at b, grant back at d.
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c/><d/></b><e/></a>", &doc).ok());
  auto ivs = PropagateMostSpecificOverride(
      doc, {{0, true}, {1, false}, {3, true}});
  // a=+, b=-, c=-, d=+, e=+  => intervals [0,1), [3,5)
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], (NodeInterval{0, 1}));
  EXPECT_EQ(ivs[1], (NodeInterval{3, 5}));
}

TEST(PolicyTest, RevertAfterSubtreeEnd) {
  // Denying a middle subtree splits the accessible region in two.
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/><c><d/><e/></c><f/></a>", &doc).ok());
  auto ivs = PropagateMostSpecificOverride(doc, {{0, true}, {2, false}});
  ASSERT_EQ(ivs.size(), 2u);
  EXPECT_EQ(ivs[0], (NodeInterval{0, 2}));  // a, b
  EXPECT_EQ(ivs[1], (NodeInterval{5, 6}));  // f
}

TEST(PolicyTest, DuplicateSeedLastWins) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/></a>", &doc).ok());
  auto ivs =
      PropagateMostSpecificOverride(doc, {{0, false}, {0, true}});
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0], (NodeInterval{0, 2}));
}

TEST(PolicyTest, SeedsOutOfRangeIgnored) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b/></a>", &doc).ok());
  auto ivs = PropagateMostSpecificOverride(doc, {{7, true}});
  EXPECT_TRUE(ivs.empty());
}

TEST(PolicyTest, SameValueSeedProducesNoBoundary) {
  Document doc;
  ASSERT_TRUE(ParseXml("<a><b><c/></b></a>", &doc).ok());
  auto ivs = PropagateMostSpecificOverride(doc, {{0, true}, {1, true}});
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0], (NodeInterval{0, 3}));
}

class PolicyRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyRandomTest, MatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  XMarkOptions opts;
  opts.seed = static_cast<uint64_t>(GetParam()) * 31 + 1;
  opts.target_nodes = 2000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
  std::vector<AclSeed> seeds;
  int num_seeds = 1 + static_cast<int>(rng.Uniform(60));
  for (int i = 0; i < num_seeds; ++i) {
    seeds.push_back({static_cast<NodeId>(rng.Uniform(doc.NumNodes())),
                     rng.Bernoulli(0.5)});
  }
  bool default_access = rng.Bernoulli(0.5);
  auto ivs = PropagateMostSpecificOverride(doc, seeds, default_access);
  // Intervals are sorted, disjoint, maximal.
  for (size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_LT(ivs[i].begin, ivs[i].end);
    if (i > 0) EXPECT_GT(ivs[i].begin, ivs[i - 1].end);
  }
  std::vector<bool> got = IntervalsToBits(ivs, doc.NumNodes());
  std::vector<bool> want = MsoBruteForce(doc, seeds, default_access);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    ASSERT_EQ(got[n], want[n]) << "node " << n << " round " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace secxml
