// SubjectView compilation and cache-invalidation contract: the compiled
// tables must agree with the direct codebook/header computation, the store
// must hand out one cached snapshot per subject, and *every* mutating
// SecureStore entry point — accessibility, structural, subject-set, and
// codebook compaction — must drop the compiled views so the next View()
// call recompiles against the new state.

#include "core/subject_view.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/accessibility_map.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kNumSubjects = 3;

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildFixture(Fixture* f, double accessibility = 0.5) {
  XMarkOptions xopts;
  xopts.seed = 11;
  xopts.target_nodes = 1500;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = 31;
  aopts.accessibility_ratio = accessibility;
  IntervalAccessMap map = GenerateSyntheticAclMap(f->doc, kNumSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;  // many pages => non-trivial skip index
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

/// Checks every compiled table against the direct computation it replaces.
void ExpectViewMatchesStore(SecureStore* store, SubjectId subject) {
  auto got = store->View(subject);
  ASSERT_TRUE(got.ok()) << got.status();
  const SubjectView& view = **got;
  EXPECT_EQ(view.subject(), subject);

  const Codebook& cb = store->codebook();
  ASSERT_EQ(view.num_codes(), cb.size());
  for (size_t code = 0; code < cb.size(); ++code) {
    EXPECT_EQ(view.CodeAccessible(static_cast<uint32_t>(code)),
              cb.Accessible(static_cast<AccessCodeId>(code), subject))
        << "code " << code;
  }

  size_t num_pages = store->nok()->num_pages();
  ASSERT_EQ(view.num_pages(), num_pages);
  for (size_t p = 0; p < num_pages; ++p) {
    EXPECT_EQ(view.PageWhollyDead(p),
              store->PageWhollyInaccessible(p, subject))
        << "page " << p;
    EXPECT_EQ(view.PageWhollyLive(p), store->PageWhollyAccessible(p, subject))
        << "page " << p;
    bool mixed = store->nok()->page_infos()[p].change_bit;
    EXPECT_EQ(view.Verdict(p) == SubjectView::PageVerdict::kMixed, mixed)
        << "page " << p;
  }

  // The skip index equals the linear scan it replaces.
  for (size_t p = 0; p <= num_pages; ++p) {
    size_t want = p;
    while (want < num_pages && view.PageWhollyDead(want)) ++want;
    EXPECT_EQ(view.NextLivePage(p), want) << "from page " << p;
  }

  // Check-free == every node in the page has an accessible code (stronger
  // than the header verdict: changed pages whose transitions are all live
  // for this subject qualify too, wholly-live pages always qualify).
  for (size_t p = 0; p < num_pages; ++p) {
    const auto& info = store->nok()->page_infos()[p];
    bool want_free = true;
    for (NodeId n = info.first_node; n < info.first_node + info.num_records;
         ++n) {
      auto code = store->nok()->AccessCode(n);
      ASSERT_TRUE(code.ok());
      if (!cb.Accessible(static_cast<AccessCodeId>(*code), subject)) {
        want_free = false;
        break;
      }
    }
    EXPECT_EQ(view.PageCheckFree(p), want_free) << "page " << p;
    if (view.PageWhollyLive(p)) EXPECT_TRUE(view.PageCheckFree(p));
  }
}

TEST(SubjectViewTest, CompiledTablesMatchDirectComputation) {
  Fixture f;
  BuildFixture(&f);
  for (SubjectId s = 0; s < kNumSubjects; ++s) {
    ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), s));
  }
}

TEST(SubjectViewTest, LowAccessibilityViewHasDeadRuns) {
  Fixture f;
  BuildFixture(&f, /*accessibility=*/0.1);
  auto view = f.store->View(0);
  ASSERT_TRUE(view.ok());
  // Sanity: the fixture actually exercises the skip index (some page is
  // wholly dead, so NextLivePage really jumps).
  bool any_dead = false;
  for (size_t p = 0; p < (*view)->num_pages(); ++p) {
    any_dead |= (*view)->PageWhollyDead(p);
  }
  EXPECT_TRUE(any_dead);
  ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), 0));
}

TEST(SubjectViewTest, CheckFreeRefinesChangedPages) {
  // Two subjects over a flat 200-child document; subject 1 is denied the
  // (page-misaligned) node range [40, 120), which plants transitions in
  // two pages. Those pages read as "mixed" from the header — but for
  // subject 0 every code in them is accessible, so the compiled scan must
  // mark them check-free, while for subject 1 they must stay checked.
  Document doc;
  std::string xml = "<root>";
  for (int i = 0; i < 200; ++i) xml += "<x/>";
  xml += "</root>";
  ASSERT_TRUE(ParseXml(xml, &doc).ok());
  DenseAccessMap map(doc.NumNodes(), /*num_subjects=*/2,
                     /*default_access=*/true);
  for (NodeId n = 40; n < 120; ++n) map.Set(1, n, false);
  DolLabeling labeling = DolLabeling::Build(map);
  MemPagedFile file;
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &file, sopts, &store).ok());

  auto v0 = store->View(0);
  auto v1 = store->View(1);
  ASSERT_TRUE(v0.ok() && v1.ok());
  bool any_changed = false;
  for (size_t p = 0; p < (*v0)->num_pages(); ++p) {
    if (!store->nok()->page_infos()[p].change_bit) continue;
    any_changed = true;
    EXPECT_FALSE((*v0)->PageWhollyLive(p)) << "header can't prove page " << p;
    EXPECT_TRUE((*v0)->PageCheckFree(p))
        << "subject 0 sees every code in page " << p;
    EXPECT_FALSE((*v1)->PageCheckFree(p))
        << "page " << p << " holds nodes denied to subject 1";
  }
  EXPECT_TRUE(any_changed) << "fixture should produce changed pages";
}

TEST(SubjectViewTest, ViewIsCachedPerSubject) {
  Fixture f;
  BuildFixture(&f);
  auto v1 = f.store->View(1);
  auto v2 = f.store->View(1);
  ASSERT_TRUE(v1.ok() && v2.ok());
  EXPECT_EQ(v1->get(), v2->get()) << "second View() should hit the cache";
  auto other = f.store->View(2);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(v1->get(), other->get());

  f.store->DropVisibilityCaches();
  auto v3 = f.store->View(1);
  ASSERT_TRUE(v3.ok());
  EXPECT_NE(v1->get(), v3->get()) << "drop must force recompilation";
}

TEST(SubjectViewTest, RejectsUnknownSubject) {
  Fixture f;
  BuildFixture(&f);
  EXPECT_FALSE(f.store->View(kNumSubjects).ok());
}

/// Returns the currently cached view snapshot for `subject`. Callers keep
/// the shared_ptr alive across the mutation under test so the freed-and-
/// reallocated-at-the-same-address case can't fake a pointer inequality.
std::shared_ptr<const SubjectView> CachedView(SecureStore* store,
                                              SubjectId subject) {
  auto v = store->View(subject);
  EXPECT_TRUE(v.ok());
  return v.ok() ? *v : nullptr;
}

TEST(SubjectViewTest, SetRangeAccessDropsViews) {
  Fixture f;
  BuildFixture(&f);
  std::shared_ptr<const SubjectView> before = CachedView(f.store.get(), 0);
  ASSERT_TRUE(f.store->SetRangeAccess(10, 40, /*subject=*/0, false).ok());
  EXPECT_NE(CachedView(f.store.get(), 0), before);
  ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), 0));
}

TEST(SubjectViewTest, SetNodeAccessDropsViewsOfAllSubjects) {
  Fixture f;
  BuildFixture(&f);
  // An update for subject 1 can intern new codes, which extends the code
  // table every subject's view indexes — all views must drop, not just the
  // updated subject's.
  std::shared_ptr<const SubjectView> other_before = CachedView(f.store.get(), 2);
  ASSERT_TRUE(f.store->SetNodeAccess(5, /*subject=*/1, false).ok());
  EXPECT_NE(CachedView(f.store.get(), 2), other_before);
  ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), 2));
}

TEST(SubjectViewTest, InsertSubtreeDropsViews) {
  Fixture f;
  BuildFixture(&f);
  std::shared_ptr<const SubjectView> before = CachedView(f.store.get(), 0);

  Document frag;
  ASSERT_TRUE(ParseXml("<note><stamp>v</stamp></note>", &frag).ok());
  DenseAccessMap fmap(frag.NumNodes(), kNumSubjects);
  for (SubjectId s = 0; s < kNumSubjects; ++s) {
    fmap.SetSubtree(frag, s, 0, s != 1);
  }
  DolLabeling flab = DolLabeling::Build(fmap);
  ASSERT_TRUE(f.store->InsertSubtree(0, kInvalidNode, frag, flab).ok());

  EXPECT_NE(CachedView(f.store.get(), 0), before);
  ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), 0));
}

TEST(SubjectViewTest, DeleteSubtreeDropsViews) {
  Fixture f;
  BuildFixture(&f);
  std::shared_ptr<const SubjectView> before = CachedView(f.store.get(), 0);
  ASSERT_TRUE(f.store->DeleteSubtree(2).ok());
  EXPECT_NE(CachedView(f.store.get(), 0), before);
  ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), 0));
}

TEST(SubjectViewTest, RemoveSubjectDropsViews) {
  Fixture f;
  BuildFixture(&f);
  std::shared_ptr<const SubjectView> before = CachedView(f.store.get(), 0);
  ASSERT_TRUE(f.store->RemoveSubject(kNumSubjects - 1).ok());
  EXPECT_NE(CachedView(f.store.get(), 0), before);
  ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), 0));
}

TEST(SubjectViewTest, CompactCodebookDropsViews) {
  Fixture f;
  BuildFixture(&f);
  // Leave duplicates behind so compaction actually remaps codes.
  ASSERT_TRUE(f.store->RemoveSubject(kNumSubjects - 1).ok());
  std::shared_ptr<const SubjectView> before = CachedView(f.store.get(), 0);
  ASSERT_TRUE(f.store->CompactCodebook().ok());
  EXPECT_NE(CachedView(f.store.get(), 0), before);
  // The recompiled view indexes the *renumbered* codes correctly.
  ASSERT_NO_FATAL_FAILURE(ExpectViewMatchesStore(f.store.get(), 0));
}

TEST(SubjectViewTest, HeldSnapshotSurvivesInvalidation) {
  Fixture f;
  BuildFixture(&f);
  auto v = f.store->View(0);
  ASSERT_TRUE(v.ok());
  std::shared_ptr<const SubjectView> held = *v;
  size_t codes = held->num_codes();
  size_t pages = held->num_pages();
  ASSERT_TRUE(f.store->SetNodeAccess(3, 0, false).ok());
  // The held snapshot stays alive and internally consistent (it describes
  // the pre-update state) even though the store's cache dropped it.
  EXPECT_EQ(held->num_codes(), codes);
  EXPECT_EQ(held->num_pages(), pages);
  for (size_t p = 0; p <= pages; ++p) {
    size_t next = held->NextLivePage(p);
    EXPECT_GE(next, p);
    EXPECT_LE(next, pages);
  }
}

}  // namespace
}  // namespace secxml
