#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

TEST(CodebookCompactionTest, CompactedDeduplicatesWithMapping) {
  Codebook cb(3);
  BitVector a(3), b(3), c(3);
  a.Set(0, true);
  b.Set(1, true);
  c.Set(0, true);
  c.Set(2, true);
  AccessCodeId ca = cb.Intern(a);
  AccessCodeId ccode = cb.Intern(c);
  AccessCodeId cbb = cb.Intern(b);
  // Removing subject 2 makes a and c identical ("10").
  ASSERT_TRUE(cb.RemoveSubject(2).ok());
  ASSERT_EQ(cb.size(), 3u);
  ASSERT_EQ(cb.CountDistinct(), 2u);
  std::vector<AccessCodeId> mapping;
  Codebook compacted = cb.Compacted(&mapping);
  EXPECT_EQ(compacted.size(), 2u);
  EXPECT_EQ(mapping[ca], mapping[ccode]);
  EXPECT_NE(mapping[ca], mapping[cbb]);
  for (AccessCodeId old = 0; old < cb.size(); ++old) {
    EXPECT_EQ(compacted.Entry(mapping[old]), cb.Entry(old));
  }
}

TEST(CodebookCompactionTest, StoreCompactionPreservesAccessibility) {
  XMarkOptions xopts;
  xopts.target_nodes = 5000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = 21;
  constexpr size_t kSubjects = 6;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, kSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  MemPagedFile file;
  NokStoreOptions options;
  options.max_records_per_page = 64;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &file, options, &store).ok());

  // Remove two subjects; duplicates pile up in the codebook.
  ASSERT_TRUE(store->RemoveSubject(5).ok());
  ASSERT_TRUE(store->RemoveSubject(2).ok());
  size_t entries_before = store->codebook().size();
  size_t distinct = store->codebook().CountDistinct();
  ASSERT_LT(distinct, entries_before);

  // Snapshot accessibility for the surviving subjects (old ids 0,1,3,4 are
  // now 0,1,2,3).
  std::vector<std::vector<bool>> want(4);
  for (SubjectId s = 0; s < 4; ++s) {
    want[s].resize(doc.NumNodes());
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      auto r = store->Accessible(s, n);
      ASSERT_TRUE(r.ok());
      want[s][n] = *r;
    }
  }

  ASSERT_TRUE(store->CompactCodebook().ok());
  EXPECT_EQ(store->codebook().size(), distinct);
  EXPECT_EQ(store->codebook().CountDistinct(), distinct);
  ASSERT_TRUE(store->nok()->CheckIntegrity().ok());
  for (SubjectId s = 0; s < 4; ++s) {
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      auto r = store->Accessible(s, n);
      ASSERT_TRUE(r.ok());
      ASSERT_EQ(*r, want[s][n]) << s << " " << n;
    }
  }
  // Transitions that became redundant were merged away.
  auto relabeled = store->ExtractLabeling();
  ASSERT_TRUE(relabeled.ok());
  EXPECT_TRUE(relabeled->CheckInvariants().ok());
  EXPECT_LE(relabeled->num_transitions(), labeling.num_transitions());
}

TEST(CodebookCompactionTest, NoOpWhenAlreadyCompact) {
  XMarkOptions xopts;
  xopts.target_nodes = 1500;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  SyntheticAclOptions aopts;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, 3, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &file, {}, &store).ok());
  size_t before = store->codebook().size();
  ASSERT_TRUE(store->nok()->buffer_pool()->FlushAll().ok());
  uint64_t writes_before = store->io_stats().page_writes;
  ASSERT_TRUE(store->CompactCodebook().ok());
  ASSERT_TRUE(store->nok()->buffer_pool()->FlushAll().ok());
  EXPECT_EQ(store->codebook().size(), before);
  // No page needed rewriting.
  EXPECT_EQ(store->io_stats().page_writes, writes_before);
}

}  // namespace
}  // namespace secxml
