#include "core/mode_folding.h"

#include <gtest/gtest.h>

#include "core/dol_labeling.h"
#include "workload/livelink_surrogate.h"

namespace secxml {
namespace {

TEST(ModeFoldingTest, FoldedSubjectNumbering) {
  EXPECT_EQ(FoldedSubject(0, 0, 10), 0u);
  EXPECT_EQ(FoldedSubject(0, 9, 10), 9u);
  EXPECT_EQ(FoldedSubject(1, 0, 10), 10u);
  EXPECT_EQ(FoldedSubject(3, 7, 10), 37u);
}

TEST(ModeFoldingTest, RejectsEmptyAndMismatched) {
  auto empty = FoldModes({});
  EXPECT_FALSE(empty.ok());
  IntervalAccessMap a(10, 2), b(10, 3);
  auto mismatched = FoldModes({&a, &b});
  EXPECT_FALSE(mismatched.ok());
  IntervalAccessMap c(11, 2);
  EXPECT_FALSE(FoldModes({&a, &c}).ok());
}

TEST(ModeFoldingTest, PreservesPerModeAccessibility) {
  LiveLinkOptions opts;
  opts.target_nodes = 12000;
  opts.num_departments = 4;
  opts.teams_per_department = 3;
  opts.num_users = 150;
  opts.num_modes = 4;
  LiveLinkWorkload w;
  ASSERT_TRUE(GenerateLiveLink(opts, &w).ok());
  std::vector<const IntervalAccessMap*> modes;
  for (const auto& m : w.modes) modes.push_back(&m);
  auto folded = FoldModes(modes);
  ASSERT_TRUE(folded.ok());
  ASSERT_TRUE(folded->Validate().ok());
  EXPECT_EQ(folded->num_subjects(), w.num_subjects() * 4);
  for (NodeId x = 0; x < w.doc.NumNodes(); x += 61) {
    for (size_t m = 0; m < 4; ++m) {
      for (SubjectId s = 0; s < w.num_subjects(); s += 13) {
        ASSERT_EQ(folded->Accessible(
                      FoldedSubject(static_cast<ModeId>(m), s,
                                    w.num_subjects()),
                      x),
                  w.modes[m].Accessible(s, x))
            << m << " " << s << " " << x;
      }
    }
  }
}

TEST(ModeFoldingTest, CrossModeCorrelationCompressesCodebook) {
  // Because higher modes are restrictions of lower ones, one folded DOL is
  // far smaller than mode-count independent copies would suggest.
  LiveLinkOptions opts;
  opts.target_nodes = 15000;
  opts.num_departments = 4;
  opts.teams_per_department = 3;
  opts.num_users = 200;
  opts.num_modes = 10;
  LiveLinkWorkload w;
  ASSERT_TRUE(GenerateLiveLink(opts, &w).ok());
  std::vector<const IntervalAccessMap*> modes;
  for (const auto& m : w.modes) modes.push_back(&m);
  auto folded = FoldModes(modes);
  ASSERT_TRUE(folded.ok());
  DolLabeling folded_dol = DolLabeling::BuildFromEvents(
      folded->num_nodes(), folded->InitialAcl(), folded->CollectEvents());
  ASSERT_TRUE(folded_dol.CheckInvariants().ok());

  size_t per_mode_transitions = 0;
  size_t per_mode_entries = 0;
  for (const auto& m : w.modes) {
    DolLabeling dol = DolLabeling::BuildFromEvents(
        m.num_nodes(), m.InitialAcl(), m.CollectEvents());
    per_mode_transitions += dol.num_transitions();
    per_mode_entries += dol.codebook().size();
  }
  // One folded labeling needs fewer transition nodes than the sum of the
  // ten separate ones (transitions at shared boundaries merge), at the cost
  // of 10x wider codebook entries.
  EXPECT_LT(folded_dol.num_transitions(), per_mode_transitions);
  EXPECT_LT(folded_dol.codebook().size(), per_mode_entries * 2);
}

}  // namespace
}  // namespace secxml
