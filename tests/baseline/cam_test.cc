#include "baseline/cam.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "xml/xmark_generator.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

Document Parse(const std::string& xml) {
  Document doc;
  EXPECT_TRUE(ParseXml(xml, &doc).ok());
  return doc;
}

TEST(CamTest, AllInaccessibleNeedsNoLabels) {
  Document doc = Parse("<a><b/><c><d/></c></a>");
  PositiveCam cam = PositiveCam::Build(doc, [](NodeId) { return false; });
  EXPECT_EQ(cam.num_labels(), 0u);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    EXPECT_FALSE(cam.Accessible(doc, n));
  }
}

TEST(CamTest, AllAccessibleNeedsOneLabel) {
  Document doc = Parse("<a><b/><c><d/><e/></c><f/></a>");
  PositiveCam cam = PositiveCam::Build(doc, [](NodeId) { return true; });
  EXPECT_EQ(cam.num_labels(), 1u);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    EXPECT_TRUE(cam.Accessible(doc, n));
  }
}

TEST(CamTest, SingleAccessibleSubtree) {
  // a(b(c d) e): only b's subtree accessible -> one desc label at b.
  Document doc = Parse("<a><b><c/><d/></b><e/></a>");
  auto acc = [](NodeId n) { return n >= 1 && n <= 3; };
  PositiveCam cam = PositiveCam::Build(doc, acc);
  EXPECT_EQ(cam.num_labels(), 1u);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    EXPECT_EQ(cam.Accessible(doc, n), acc(n)) << n;
  }
}

TEST(CamTest, HolesForceSelfLabelsOnAncestors) {
  // Everything accessible except node d (id 3): positive labels cannot
  // blanket a subtree containing the hole, so a and b need self labels and
  // the fully accessible leaves c and e get desc labels.
  Document doc = Parse("<a><b><c/><d/></b><e/></a>");
  auto acc = [](NodeId n) { return n != 3; };
  PositiveCam cam = PositiveCam::Build(doc, acc);
  EXPECT_EQ(cam.num_labels(), 4u);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    EXPECT_EQ(cam.Accessible(doc, n), acc(n)) << n;
  }
  // The override variant expresses the same map with two labels
  // (grant at the root, deny at d).
  Cam ocam = Cam::Build(doc, acc);
  EXPECT_EQ(ocam.num_labels(), 2u);
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    EXPECT_EQ(ocam.Accessible(doc, n), acc(n)) << n;
  }
}

TEST(CamTest, LookupCorrectOnRandomTrees) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    XMarkOptions opts;
    opts.seed = seed;
    opts.target_nodes = 1500;
    Document doc;
    ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
    Rng rng(seed * 101);
    // Random subtree-propagated accessibility for structural locality.
    std::vector<bool> acc(doc.NumNodes(), false);
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      NodeId p = doc.Parent(n);
      bool inherited = p == kInvalidNode ? false : acc[p];
      acc[n] = rng.Bernoulli(0.05) ? !inherited : inherited;
    }
    auto fn = [&acc](NodeId n) { return acc[n]; };
    PositiveCam cam = PositiveCam::Build(doc, fn);
    Cam ocam = Cam::Build(doc, fn);
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      ASSERT_EQ(cam.Accessible(doc, n), acc[n]) << "seed " << seed;
      ASSERT_EQ(ocam.Accessible(doc, n), acc[n]) << "seed " << seed;
    }
    // Overrides never lose to the positive cover.
    EXPECT_LE(ocam.num_labels(), cam.num_labels());
  }
}

// Exhaustive minimality oracle for the positive-cover CAM: each node is
// unlabeled, self-labeled, or desc-labeled; resolution must reproduce acc.
size_t MinPositiveCamBruteForce(const Document& doc,
                                const std::vector<bool>& acc) {
  const size_t n = doc.NumNodes();
  size_t best = n + 1;
  std::vector<int> state(n, 0);  // 0 none, 1 self, 2 self+desc
  auto eval = [&]() {
    size_t labels = 0;
    for (size_t i = 0; i < n; ++i) labels += state[i] != 0;
    if (labels >= best) return;
    for (NodeId x = 0; x < n; ++x) {
      bool value = state[x] >= 1;
      for (NodeId a = x; !value; a = doc.Parent(a)) {
        if (state[a] == 2) value = true;
        if (doc.Parent(a) == kInvalidNode) break;
      }
      if (value != acc[x]) return;
    }
    best = labels;
  };
  while (true) {
    eval();
    size_t i = 0;
    while (i < n && state[i] == 2) state[i++] = 0;
    if (i == n) break;
    ++state[i];
  }
  return best;
}

// Exhaustive oracle for the override CAM: lowest labeled ancestor decides.
size_t MinCamBruteForce(const Document& doc,
                                const std::vector<bool>& acc) {
  const size_t n = doc.NumNodes();
  size_t best = n + 1;
  // States: 0 unlabeled, 1 labeled desc=0, 2 labeled desc=1 (self bit is
  // free and set to acc, so it never constrains).
  std::vector<int> state(n, 0);
  auto eval = [&]() {
    size_t labels = 0;
    for (size_t i = 0; i < n; ++i) labels += state[i] != 0;
    if (labels >= best) return;
    for (NodeId x = 0; x < n; ++x) {
      bool value = false;
      if (state[x] != 0) {
        value = acc[x];
      } else {
        for (NodeId a = doc.Parent(x); a != kInvalidNode; a = doc.Parent(a)) {
          if (state[a] != 0) {
            value = state[a] == 2;
            break;
          }
        }
      }
      if (value != acc[x]) return;
    }
    best = labels;
  };
  while (true) {
    eval();
    size_t i = 0;
    while (i < n && state[i] == 2) state[i++] = 0;
    if (i == n) break;
    ++state[i];
  }
  return best;
}

class CamMinimalityTest : public ::testing::TestWithParam<int> {
 protected:
  void MakeRandomTree(Document* doc, std::vector<bool>* acc) {
    Rng rng(static_cast<uint64_t>(GetParam()) * 13 + 7);
    constexpr int kN = 7;
    DocumentBuilder b;
    b.BeginElement("n");
    int open = 1;
    for (int i = 1; i < kN; ++i) {
      while (open > 1 && rng.Bernoulli(0.4)) {
        ASSERT_TRUE(b.EndElement().ok());
        --open;
      }
      b.BeginElement("n");
      ++open;
    }
    while (open-- > 0) ASSERT_TRUE(b.EndElement().ok());
    ASSERT_TRUE(b.Finish(doc).ok());
    ASSERT_EQ(doc->NumNodes(), static_cast<size_t>(kN));
    acc->resize(kN);
    for (int i = 0; i < kN; ++i) (*acc)[i] = rng.Bernoulli(0.5);
  }
};

TEST_P(CamMinimalityTest, PositiveCoverMatchesExhaustiveSearch) {
  Document doc;
  std::vector<bool> acc;
  MakeRandomTree(&doc, &acc);
  PositiveCam cam = PositiveCam::Build(doc, [&acc](NodeId x) { return acc[x]; });
  for (NodeId x = 0; x < doc.NumNodes(); ++x) {
    ASSERT_EQ(cam.Accessible(doc, x), acc[x]);
  }
  EXPECT_EQ(cam.num_labels(), MinPositiveCamBruteForce(doc, acc));
}

TEST_P(CamMinimalityTest, OverrideMatchesExhaustiveSearch) {
  Document doc;
  std::vector<bool> acc;
  MakeRandomTree(&doc, &acc);
  Cam cam = Cam::Build(doc, [&acc](NodeId x) { return acc[x]; });
  for (NodeId x = 0; x < doc.NumNodes(); ++x) {
    ASSERT_EQ(cam.Accessible(doc, x), acc[x]);
  }
  EXPECT_EQ(cam.num_labels(), MinCamBruteForce(doc, acc));
}

INSTANTIATE_TEST_SUITE_P(Random, CamMinimalityTest, ::testing::Range(0, 20));

TEST(CamTest, AsymmetricInAccessibilityRatio) {
  // Section 5.1: CAM size is asymmetric — low accessibility ratios are far
  // cheaper than high ones (the paper reports the 10% size at roughly a
  // third of the 90% size, with the maximum near 60%).
  XMarkOptions opts;
  opts.target_nodes = 4000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
  auto cam_size_at = [&doc](double ratio) {
    Rng rng(5);
    std::vector<bool> acc(doc.NumNodes());
    for (NodeId n = 0; n < doc.NumNodes(); ++n) acc[n] = rng.Bernoulli(ratio);
    PositiveCam cam = PositiveCam::Build(doc, [&acc](NodeId n) { return acc[n]; });
    return cam.num_labels();
  };
  size_t low = cam_size_at(0.1);
  size_t mid = cam_size_at(0.6);
  size_t high = cam_size_at(0.9);
  EXPECT_LT(low, high);
  EXPECT_LT(low * 2, mid);  // pronounced growth toward the middle/high end
}

TEST(CamTest, OverrideComplementDuality) {
  // The override variant is complement-dual up to one root label; the
  // positive cover deliberately is not (that is the source of the
  // asymmetry above).
  XMarkOptions opts;
  opts.target_nodes = 2000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(opts, &doc).ok());
  Rng rng(5);
  std::vector<bool> acc(doc.NumNodes());
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    NodeId p = doc.Parent(n);
    bool inherited = p == kInvalidNode ? false : acc[p];
    acc[n] = rng.Bernoulli(0.08) ? !inherited : inherited;
  }
  Cam cam = Cam::Build(doc, [&acc](NodeId n) { return acc[n]; });
  Cam complement =
      Cam::Build(doc, [&acc](NodeId n) { return !acc[n]; });
  EXPECT_LE(cam.num_labels(), complement.num_labels() + 1);
  EXPECT_LE(complement.num_labels(), cam.num_labels() + 1);
}

TEST(CamTest, ByteSizeAccountsPointers) {
  Document doc = Parse("<a><b/><c/></a>");
  PositiveCam cam = PositiveCam::Build(doc, [](NodeId n) { return n != 2; });
  ASSERT_EQ(cam.num_labels(), 2u);  // self label at a, desc label at b
  EXPECT_EQ(cam.ByteSize(8), 2u * 9u);
  EXPECT_EQ(cam.ByteSize(1), 2u * 2u);  // the paper's charitable estimate
}

TEST(CamTest, EmptyDocument) {
  Document doc;
  PositiveCam cam = PositiveCam::Build(doc, [](NodeId) { return true; });
  EXPECT_EQ(cam.num_labels(), 0u);
  Cam ocam = Cam::Build(doc, [](NodeId) { return true; });
  EXPECT_EQ(ocam.num_labels(), 0u);
}

}  // namespace
}  // namespace secxml
