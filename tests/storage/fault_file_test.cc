#include "storage/fault_file.h"

#include <gtest/gtest.h>

#include <vector>

namespace secxml {
namespace {

// Fills `base` with `n` pages, page i filled with byte (i * 13 + 1).
void FillBase(MemPagedFile* base, int n) {
  for (int i = 0; i < n; ++i) {
    auto id = base->AllocatePage();
    EXPECT_TRUE(id.ok());
    Page p;
    p.data.fill(static_cast<uint8_t>(i * 13 + 1));
    EXPECT_TRUE(base->WritePage(*id, p).ok());
  }
}

TEST(FaultInjectingPagedFileTest, PassesThroughWithoutFaults) {
  MemPagedFile base;
  FillBase(&base, 3);
  FaultInjectingPagedFile fault(&base);
  EXPECT_EQ(fault.NumPages(), 3u);
  Page p;
  ASSERT_TRUE(fault.ReadPage(1, &p).ok());
  EXPECT_EQ(p.data[0], 1 * 13 + 1);
  ASSERT_TRUE(fault.WritePage(1, p).ok());
  ASSERT_TRUE(fault.Sync().ok());
  ASSERT_TRUE(fault.AllocatePage().ok());
  EXPECT_EQ(fault.stats().total_injected(), 0u);
}

TEST(FaultInjectingPagedFileTest, FailNextArmsExactCount) {
  MemPagedFile base;
  FillBase(&base, 2);
  FaultInjectingPagedFile fault(&base);
  fault.FailNext(FaultOp::kRead, 2);
  Page p;
  Status st = fault.ReadPage(0, &p);
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  EXPECT_NE(st.message().find("injected"), std::string::npos);
  EXPECT_EQ(fault.ReadPage(1, &p).code(), StatusCode::kIOError);
  // Third read passes; other operation kinds were never armed.
  EXPECT_TRUE(fault.ReadPage(0, &p).ok());
  EXPECT_TRUE(fault.WritePage(0, p).ok());
  EXPECT_TRUE(fault.Sync().ok());
  EXPECT_EQ(fault.stats().injected_reads, 2u);
  EXPECT_EQ(fault.stats().total_injected(), 2u);
}

TEST(FaultInjectingPagedFileTest, ProbabilityOneFailsEverything) {
  MemPagedFile base;
  FillBase(&base, 2);
  FaultOptions opts;
  opts.read_fault_prob = 1.0;
  opts.write_fault_prob = 1.0;
  opts.sync_fault_prob = 1.0;
  opts.allocate_fault_prob = 1.0;
  FaultInjectingPagedFile fault(&base, opts);
  Page p;
  EXPECT_EQ(fault.ReadPage(0, &p).code(), StatusCode::kIOError);
  EXPECT_EQ(fault.WritePage(0, p).code(), StatusCode::kIOError);
  EXPECT_EQ(fault.Sync().code(), StatusCode::kIOError);
  EXPECT_FALSE(fault.AllocatePage().ok());
  // Without short_extends the base must not have grown.
  EXPECT_EQ(base.NumPages(), 2u);
  EXPECT_EQ(fault.stats().total_injected(), 4u);
}

TEST(FaultInjectingPagedFileTest, DeterministicBySeed) {
  auto trace = [](uint64_t seed) {
    MemPagedFile base;
    FillBase(&base, 4);
    FaultOptions opts;
    opts.seed = seed;
    opts.read_fault_prob = 0.3;
    FaultInjectingPagedFile fault(&base, opts);
    std::vector<bool> outcomes;
    Page p;
    for (int i = 0; i < 200; ++i) {
      outcomes.push_back(fault.ReadPage(static_cast<PageId>(i % 4), &p).ok());
    }
    return outcomes;
  };
  EXPECT_EQ(trace(7), trace(7));
  EXPECT_NE(trace(7), trace(8));
}

TEST(FaultInjectingPagedFileTest, DisableBypassesEvenArmedFaults) {
  MemPagedFile base;
  FillBase(&base, 1);
  FaultOptions opts;
  opts.read_fault_prob = 1.0;
  FaultInjectingPagedFile fault(&base, opts);
  fault.FailNext(FaultOp::kWrite, 1);
  fault.SetPageFault(0, /*fail_reads=*/true, /*fail_writes=*/false);
  fault.set_enabled(false);
  Page p;
  EXPECT_TRUE(fault.ReadPage(0, &p).ok());
  EXPECT_TRUE(fault.WritePage(0, p).ok());
  fault.set_enabled(true);
  EXPECT_EQ(fault.ReadPage(0, &p).code(), StatusCode::kIOError);
}

TEST(FaultInjectingPagedFileTest, PageFaultsArePersistentUntilCleared) {
  MemPagedFile base;
  FillBase(&base, 3);
  FaultInjectingPagedFile fault(&base);
  fault.SetPageFault(1, /*fail_reads=*/true, /*fail_writes=*/true);
  Page p;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(fault.ReadPage(1, &p).code(), StatusCode::kIOError);
    EXPECT_EQ(fault.WritePage(1, p).code(), StatusCode::kIOError);
  }
  EXPECT_TRUE(fault.ReadPage(0, &p).ok());
  EXPECT_TRUE(fault.ReadPage(2, &p).ok());
  fault.ClearPageFaults();
  EXPECT_TRUE(fault.ReadPage(1, &p).ok());
  EXPECT_TRUE(fault.WritePage(1, p).ok());
}

TEST(FaultInjectingPagedFileTest, PersistentModeRemembersDrawnPages) {
  MemPagedFile base;
  FillBase(&base, 1);
  FaultOptions opts;
  opts.read_fault_prob = 1.0;
  opts.persistent = true;
  FaultInjectingPagedFile fault(&base, opts);
  Page p;
  EXPECT_EQ(fault.ReadPage(0, &p).code(), StatusCode::kIOError);
  // Drop the probability to zero: the page stays bad (bad-sector model).
  FaultOptions calm;
  calm.persistent = true;
  fault.SetOptions(calm);
  EXPECT_EQ(fault.ReadPage(0, &p).code(), StatusCode::kIOError);
  fault.ClearPageFaults();
  EXPECT_TRUE(fault.ReadPage(0, &p).ok());
}

TEST(FaultInjectingPagedFileTest, TornWriteLeavesMixedImage) {
  MemPagedFile base;
  FillBase(&base, 1);
  FaultOptions opts;
  opts.torn_writes = true;
  FaultInjectingPagedFile fault(&base, opts);
  fault.FailNext(FaultOp::kWrite, 1);
  Page neu;
  neu.data.fill(0xee);
  EXPECT_EQ(fault.WritePage(0, neu).code(), StatusCode::kIOError);
  Page got;
  ASSERT_TRUE(base.ReadPage(0, &got).ok());
  for (size_t i = 0; i < kPageSize / 2; ++i) {
    ASSERT_EQ(got.data[i], 0xee) << "byte " << i;  // new half
  }
  for (size_t i = kPageSize / 2; i < kPageSize; ++i) {
    ASSERT_EQ(got.data[i], 1u) << "byte " << i;  // old half (fill of page 0)
  }
  EXPECT_EQ(fault.stats().torn_writes, 1u);
}

TEST(FaultInjectingPagedFileTest, ShortExtendGrowsBaseBehindCallersBack) {
  MemPagedFile base;
  FillBase(&base, 2);
  FaultOptions opts;
  opts.short_extends = true;
  FaultInjectingPagedFile fault(&base, opts);
  fault.FailNext(FaultOp::kAllocate, 1);
  EXPECT_FALSE(fault.AllocatePage().ok());
  EXPECT_EQ(base.NumPages(), 3u);  // grew despite the reported failure
  EXPECT_EQ(fault.stats().short_extends, 1u);
}

TEST(RetryingPagedFileTest, RecoversFromTransientFaults) {
  MemPagedFile base;
  FillBase(&base, 2);
  FaultInjectingPagedFile fault(&base);
  RetryOptions ropts;
  ropts.max_attempts = 3;
  RetryingPagedFile retry(&fault, ropts);

  fault.FailNext(FaultOp::kRead, 2);
  Page p;
  ASSERT_TRUE(retry.ReadPage(0, &p).ok());
  EXPECT_EQ(p.data[0], 1u);
  EXPECT_EQ(retry.stats().retries, 2u);
  EXPECT_EQ(retry.stats().recovered, 1u);
  EXPECT_EQ(retry.stats().gave_up, 0u);

  fault.FailNext(FaultOp::kWrite, 1);
  EXPECT_TRUE(retry.WritePage(0, p).ok());
  fault.FailNext(FaultOp::kSync, 1);
  EXPECT_TRUE(retry.Sync().ok());
  fault.FailNext(FaultOp::kAllocate, 1);
  auto id = retry.AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 2u);
  EXPECT_EQ(retry.stats().recovered, 4u);
}

TEST(RetryingPagedFileTest, GivesUpOnPersistentFaults) {
  MemPagedFile base;
  FillBase(&base, 2);
  FaultInjectingPagedFile fault(&base);
  fault.SetPageFault(1, /*fail_reads=*/true, /*fail_writes=*/false);
  RetryOptions ropts;
  ropts.max_attempts = 4;
  RetryingPagedFile retry(&fault, ropts);
  Page p;
  EXPECT_EQ(retry.ReadPage(1, &p).code(), StatusCode::kIOError);
  EXPECT_EQ(retry.stats().retries, 3u);  // max_attempts - first try
  EXPECT_EQ(retry.stats().gave_up, 1u);
  EXPECT_EQ(retry.stats().recovered, 0u);
}

TEST(RetryingPagedFileTest, DoesNotRetryNonTransientErrors) {
  MemPagedFile base;
  FillBase(&base, 1);
  FaultInjectingPagedFile fault(&base);
  RetryingPagedFile retry(&fault, {});
  Page p;
  // OutOfRange describes the request; exactly one attempt must reach the
  // base (no retries recorded).
  EXPECT_EQ(retry.ReadPage(9, &p).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(retry.stats().retries, 0u);
  EXPECT_EQ(retry.stats().gave_up, 0u);
}

}  // namespace
}  // namespace secxml
