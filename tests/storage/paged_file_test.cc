#include "storage/paged_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <vector>

namespace secxml {
namespace {

class PagedFileTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (GetParam()) {
      path_ = std::filesystem::temp_directory_path() /
              ("secxml_paged_file_test_" +
               std::to_string(::getpid()) + ".db");
      auto created = FilePagedFile::Create(path_.string());
      ASSERT_TRUE(created.ok()) << created.status();
      file_ = std::move(created).value();
    } else {
      file_ = std::make_unique<MemPagedFile>();
    }
  }

  void TearDown() override {
    file_.reset();
    if (GetParam()) std::filesystem::remove(path_);
  }

  std::unique_ptr<PagedFile> file_;
  std::filesystem::path path_;
};

TEST_P(PagedFileTest, StartsEmpty) { EXPECT_EQ(file_->NumPages(), 0u); }

TEST_P(PagedFileTest, AllocateGrowsAndZeroes) {
  auto r = file_->AllocatePage();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 0u);
  EXPECT_EQ(file_->NumPages(), 1u);
  Page p;
  p.data.fill(0xab);
  ASSERT_TRUE(file_->ReadPage(0, &p).ok());
  for (uint8_t b : p.data) ASSERT_EQ(b, 0);
}

TEST_P(PagedFileTest, WriteThenReadRoundTrips) {
  ASSERT_TRUE(file_->AllocatePage().ok());
  ASSERT_TRUE(file_->AllocatePage().ok());
  Page w;
  for (size_t i = 0; i < kPageSize; ++i) {
    w.data[i] = static_cast<uint8_t>(i * 7);
  }
  ASSERT_TRUE(file_->WritePage(1, w).ok());
  Page r;
  ASSERT_TRUE(file_->ReadPage(1, &r).ok());
  EXPECT_EQ(r.data, w.data);
  // Page 0 still zero.
  ASSERT_TRUE(file_->ReadPage(0, &r).ok());
  EXPECT_EQ(r.data[0], 0);
}

TEST_P(PagedFileTest, OutOfRangeAccessFails) {
  Page p;
  EXPECT_EQ(file_->ReadPage(0, &p).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(file_->WritePage(0, p).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(file_->AllocatePage().ok());
  EXPECT_EQ(file_->ReadPage(1, &p).code(), StatusCode::kOutOfRange);
}

TEST_P(PagedFileTest, ManyPages) {
  constexpr int kN = 50;
  for (int i = 0; i < kN; ++i) {
    auto r = file_->AllocatePage();
    ASSERT_TRUE(r.ok());
    Page p;
    p.Zero();
    p.WriteAt<uint32_t>(0, static_cast<uint32_t>(i * 31));
    ASSERT_TRUE(file_->WritePage(*r, p).ok());
  }
  for (int i = 0; i < kN; ++i) {
    Page p;
    ASSERT_TRUE(file_->ReadPage(static_cast<PageId>(i), &p).ok());
    EXPECT_EQ(p.ReadAt<uint32_t>(0), static_cast<uint32_t>(i * 31));
  }
}

INSTANTIATE_TEST_SUITE_P(MemAndDisk, PagedFileTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Disk" : "Mem";
                         });

TEST(FilePagedFileTest, PersistsAcrossReopen) {
  auto path = std::filesystem::temp_directory_path() / "secxml_reopen.db";
  {
    auto created = FilePagedFile::Create(path.string());
    ASSERT_TRUE(created.ok());
    auto& f = *created;
    ASSERT_TRUE(f->AllocatePage().ok());
    Page p;
    p.Zero();
    p.WriteAt<uint64_t>(8, 0xdeadbeefcafef00dULL);
    ASSERT_TRUE(f->WritePage(0, p).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  {
    auto opened = FilePagedFile::Open(path.string());
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ((*opened)->NumPages(), 1u);
    Page p;
    ASSERT_TRUE((*opened)->ReadPage(0, &p).ok());
    EXPECT_EQ(p.ReadAt<uint64_t>(8), 0xdeadbeefcafef00dULL);
  }
  std::filesystem::remove(path);
}

TEST(FilePagedFileTest, OpenMissingFileFails) {
  auto r = FilePagedFile::Open("/nonexistent/dir/x.db");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(FilePagedFileTest, OpenRepairsTrailingPartialPage) {
  // A trailing partial page is what a crash mid-AllocatePage leaves behind.
  // Open truncates it away and recovers the intact prefix.
  auto path = std::filesystem::temp_directory_path() / "secxml_misaligned.db";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a page", f);
    std::fclose(f);
  }
  {
    auto r = FilePagedFile::Open(path.string());
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ((*r)->NumPages(), 0u);
  }
  EXPECT_EQ(std::filesystem::file_size(path), 0u);
  std::filesystem::remove(path);
}

TEST(FilePagedFileTest, OpenRepairKeepsIntactPages) {
  auto path = std::filesystem::temp_directory_path() / "secxml_partial.db";
  {
    auto created = FilePagedFile::Create(path.string());
    ASSERT_TRUE(created.ok());
    auto& f = *created;
    ASSERT_TRUE(f->AllocatePage().ok());
    ASSERT_TRUE(f->AllocatePage().ok());
    Page p;
    p.Zero();
    p.WriteAt<uint32_t>(0, 0xfeedu);
    ASSERT_TRUE(f->WritePage(1, p).ok());
    ASSERT_TRUE(f->Sync().ok());
  }
  {
    // Simulate a crash mid-extend: append half a page of garbage.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::vector<char> junk(kPageSize / 2, 'x');
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
    std::fclose(f);
  }
  {
    auto r = FilePagedFile::Open(path.string());
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ((*r)->NumPages(), 2u);
    Page p;
    ASSERT_TRUE((*r)->ReadPage(1, &p).ok());
    EXPECT_EQ(p.ReadAt<uint32_t>(0), 0xfeedu);
    // The dropped tail must not resurface as a readable page.
    EXPECT_EQ((*r)->ReadPage(2, &p).code(), StatusCode::kOutOfRange);
  }
  EXPECT_EQ(std::filesystem::file_size(path), 2 * kPageSize);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace secxml
