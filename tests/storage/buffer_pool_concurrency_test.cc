// Concurrency stress tests for the sharded BufferPool: N threads doing
// mixed Fetch/Allocate/MarkDirty/EvictAll against a pool smaller than the
// working set. Invariants checked:
//  - no lost dirty writes (every increment a thread applied under a pin is
//    visible in the final page image, i.e. the contents match what a
//    single-threaded replay of the same per-thread operation counts gives),
//  - pin-count accounting (nothing stays pinned after all handles drop),
//  - hit/read accounting (every successful fetch is exactly one of the two),
//  - graceful exhaustion (all-pinned shards fail the fetch, never deadlock).
//
// Run under SECXML_SANITIZE=thread these double as data-race detectors for
// the latch protocol.

#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/paged_file.h"

namespace secxml {
namespace {

// Each thread owns one uint64 slot in every page; an increment is a
// read-modify-write done while the page is pinned, so pages may travel
// through eviction/re-fetch between increments but never during one.
constexpr size_t kMaxThreads = 8;

uint64_t ReadSlot(const Page& page, size_t thread) {
  return page.ReadAt<uint64_t>(8 * thread);
}

void BumpSlot(Page* page, size_t thread) {
  page->WriteAt<uint64_t>(8 * thread, ReadSlot(*page, thread) + 1);
}

TEST(BufferPoolConcurrencyTest, MixedStressNoLostDirtyWrites) {
  constexpr size_t kThreads = 4;
  constexpr PageId kInitialPages = 48;
  constexpr int kItersPerThread = 4000;

  MemPagedFile file;
  for (PageId i = 0; i < kInitialPages; ++i) {
    auto r = file.AllocatePage();
    ASSERT_TRUE(r.ok());
  }
  // 12 frames over 48+ pages: constant eviction pressure; 4 explicit shards
  // so the latch protocol (not a single global lock) is what is exercised.
  BufferPool pool(&file, 12, 4);
  ASSERT_EQ(pool.num_shards(), 4u);

  // counts[t][page] = increments thread t applied to page's slot t.
  std::vector<std::map<PageId, uint64_t>> counts(kThreads);
  std::atomic<bool> failed{false};

  auto body = [&](size_t t) {
    Rng rng(977 + t);
    for (int i = 0; i < kItersPerThread && !failed.load(); ++i) {
      uint64_t op = rng.Uniform(100);
      if (op < 2) {
        // Whole-pool eviction concurrent with everyone else's fetches.
        Status st = pool.EvictAll();
        if (!st.ok()) {
          ADD_FAILURE() << "EvictAll: " << st.ToString();
          failed = true;
        }
      } else if (op < 5) {
        // Grow the working set.
        auto h = pool.Allocate();
        if (!h.ok()) {
          // Shard exhaustion (every frame of the new page's shard pinned at
          // this instant) is legal under pressure; anything else is a bug.
          if (h.status().code() != StatusCode::kIOError) {
            ADD_FAILURE() << "Allocate: " << h.status().ToString();
            failed = true;
          }
          continue;
        }
        BumpSlot(h->mutable_page(), t);
        h->MarkDirty();
        counts[t][h->page_id()] += 1;
      } else {
        PageId id = static_cast<PageId>(rng.Uniform(kInitialPages));
        auto h = pool.Fetch(id);
        if (!h.ok()) {
          // Shard exhaustion is legal under pressure; nothing else is.
          if (h.status().code() != StatusCode::kIOError) {
            ADD_FAILURE() << "Fetch: " << h.status().ToString();
            failed = true;
          }
          continue;
        }
        if (op < 60) {
          BumpSlot(h->mutable_page(), t);
          h->MarkDirty();
          counts[t][id] += 1;
        }
      }
    }
  };

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) threads.emplace_back(body, t);
  for (std::thread& th : threads) th.join();
  ASSERT_FALSE(failed.load());

  // Quiescent invariants.
  EXPECT_EQ(pool.num_pinned(), 0u);
  ASSERT_TRUE(pool.FlushAll().ok());

  // Single-threaded replay: each page slot must hold exactly the number of
  // increments its owning thread applied — a lost dirty write (eviction
  // dropping a MarkDirty, or a stale frame reused without writeback) shows
  // up as a smaller value.
  for (size_t t = 0; t < kThreads; ++t) {
    for (const auto& [page_id, expected] : counts[t]) {
      Page p;
      ASSERT_TRUE(file.ReadPage(page_id, &p).ok());
      EXPECT_EQ(ReadSlot(p, t), expected)
          << "lost write: thread " << t << " page " << page_id;
    }
  }
}

TEST(BufferPoolConcurrencyTest, ConcurrentFetchSamePageCountsOnce) {
  constexpr size_t kThreads = 4;
  constexpr int kFetches = 2000;
  MemPagedFile file;
  ASSERT_TRUE(file.AllocatePage().ok());
  BufferPool pool(&file, 8, 2);

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool]() {
      for (int i = 0; i < kFetches; ++i) {
        auto h = pool.Fetch(0);
        ASSERT_TRUE(h.ok());
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // One physical read, everything else hits; the sum is exact (no torn or
  // dropped counter increments).
  EXPECT_EQ(pool.stats().page_reads, 1u);
  EXPECT_EQ(pool.stats().cache_hits, kThreads * kFetches - 1u);
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(BufferPoolConcurrencyTest, PinInvariantsAcrossThreads) {
  MemPagedFile file;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(file.AllocatePage().ok());
  BufferPool pool(&file, 4, 1);

  // Handles can be released on a different thread than they were pinned on.
  auto h = pool.Fetch(2);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(pool.num_pinned(), 1u);
  PageHandle moved = std::move(*h);
  std::thread releaser([&moved]() { moved.Release(); });
  releaser.join();
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST(BufferPoolConcurrencyTest, AllPinnedShardFailsWithoutDeadlock) {
  constexpr size_t kThreads = 6;
  MemPagedFile file;
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(file.AllocatePage().ok());
  BufferPool pool(&file, 4, 1);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < 500; ++i) {
        // Hold two pins at once to create transient exhaustion.
        auto a = pool.Fetch(static_cast<PageId>((t + i) % 16));
        auto b = pool.Fetch(static_cast<PageId>((t * 3 + i) % 16));
        if (!a.ok()) failures.fetch_add(1);
        if (!b.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Exhaustion may or may not happen depending on scheduling; the invariant
  // is that we got here (no deadlock) with nothing left pinned.
  EXPECT_EQ(pool.num_pinned(), 0u);
  EXPECT_EQ(pool.num_cached(), std::min<size_t>(4, pool.capacity()));
}

}  // namespace
}  // namespace secxml
