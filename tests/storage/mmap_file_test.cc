// MmapPagedFile: the read-only mmap read path must serve a persisted store
// byte-identically to the stdio file it was written through, deny every
// write, and bounds-check every access (no SIGBUS, ever) — including files
// with a torn trailing partial page and empty files.

#include "storage/mmap_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

class MmapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("secxml_mmap_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".db");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(MmapFileTest, RoundTripsPagesWrittenThroughStdio) {
  {
    auto created = FilePagedFile::Create(path_.string());
    ASSERT_TRUE(created.ok());
    auto file = std::move(created).value();
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(file->AllocatePage().ok());
    Page w;
    for (size_t i = 0; i < kPageSize; ++i) {
      w.data[i] = static_cast<uint8_t>(i * 13 + 5);
    }
    ASSERT_TRUE(file->WritePage(1, w).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  auto opened = MmapPagedFile::Open(path_.string());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto mm = std::move(opened).value();
  ASSERT_EQ(mm->NumPages(), 3u);
  Page r;
  ASSERT_TRUE(mm->ReadPage(1, &r).ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(r.data[i], static_cast<uint8_t>(i * 13 + 5));
  }
  ASSERT_TRUE(mm->ReadPage(0, &r).ok());
  for (uint8_t b : r.data) ASSERT_EQ(b, 0);
}

TEST_F(MmapFileTest, OutOfRangeReadIsDeniedNotSigbus) {
  {
    auto created = FilePagedFile::Create(path_.string());
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->AllocatePage().ok());
  }
  auto mm = std::move(MmapPagedFile::Open(path_.string())).value();
  Page p;
  Status st = mm->ReadPage(1, &p);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange) << st;
  EXPECT_EQ(mm->ReadPage(12345, &p).code(), StatusCode::kOutOfRange);
}

TEST_F(MmapFileTest, WritesAndAllocationsAreDenied) {
  {
    auto created = FilePagedFile::Create(path_.string());
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->AllocatePage().ok());
  }
  auto mm = std::move(MmapPagedFile::Open(path_.string())).value();
  Page p;
  EXPECT_EQ(mm->WritePage(0, p).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(mm->AllocatePage().status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(mm->Sync().ok());  // no-op: nothing can be dirty
}

TEST_F(MmapFileTest, TrailingPartialPageIsExcluded) {
  {
    auto created = FilePagedFile::Create(path_.string());
    ASSERT_TRUE(created.ok());
    ASSERT_TRUE((*created)->AllocatePage().ok());
    ASSERT_TRUE((*created)->AllocatePage().ok());
  }
  {
    // A torn extend: half a page of garbage past the last full page.
    std::FILE* f = std::fopen(path_.string().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::vector<char> junk(kPageSize / 2, 0x5a);
    ASSERT_EQ(std::fwrite(junk.data(), 1, junk.size(), f), junk.size());
    std::fclose(f);
  }
  auto opened = MmapPagedFile::Open(path_.string());
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ((*opened)->NumPages(), 2u);
  Page p;
  EXPECT_TRUE((*opened)->ReadPage(1, &p).ok());
  EXPECT_EQ((*opened)->ReadPage(2, &p).code(), StatusCode::kOutOfRange);
}

TEST_F(MmapFileTest, EmptyFileIsAValidZeroPageStore) {
  {
    auto created = FilePagedFile::Create(path_.string());
    ASSERT_TRUE(created.ok());
  }
  auto opened = MmapPagedFile::Open(path_.string());
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ((*opened)->NumPages(), 0u);
  Page p;
  EXPECT_EQ((*opened)->ReadPage(0, &p).code(), StatusCode::kOutOfRange);
}

TEST_F(MmapFileTest, MissingFileFailsToOpen) {
  auto opened = MmapPagedFile::Open(path_.string() + ".does-not-exist");
  EXPECT_FALSE(opened.ok());
}

TEST_F(MmapFileTest, ServesAPersistedSecureStoreIdentically) {
  // Build + persist a secure store through stdio, then run the same secure
  // queries through an mmap-backed reopen: answers and the zero-extra-I/O
  // property must be identical to the still-live original.
  XMarkOptions xopts;
  xopts.seed = 99;
  xopts.target_nodes = 1200;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  constexpr size_t kSubjects = 6;
  IntervalAccessMap map(static_cast<NodeId>(doc.NumNodes()), kSubjects);
  for (SubjectId s = 0; s < kSubjects; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = 900 + s;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(doc, aopts));
  }
  ASSERT_TRUE(map.Validate().ok());
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;

  MemPagedFile mem;
  std::unique_ptr<SecureStore> original;
  ASSERT_TRUE(SecureStore::Build(doc, labeling, &mem, sopts, &original).ok());
  {
    auto created = FilePagedFile::Create(path_.string());
    ASSERT_TRUE(created.ok());
    auto file = std::move(created).value();
    std::unique_ptr<SecureStore> writer;
    ASSERT_TRUE(
        SecureStore::Build(doc, labeling, file.get(), sopts, &writer).ok());
    ASSERT_TRUE(writer->Persist().ok());
  }

  auto opened = MmapPagedFile::Open(path_.string());
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto mm = std::move(opened).value();
  std::unique_ptr<SecureStore> reopened;
  Status st = SecureStore::Open(mm.get(), sopts, &reopened);
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(reopened->num_nodes(), original->num_nodes());

  QueryEvaluator want(original.get());
  QueryEvaluator got(reopened.get());
  for (int i = 0; i < 4; ++i) {
    QueryGenOptions qopts;
    qopts.seed = 7000 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i % 4;
    PatternTree q = GenerateTwigQuery(doc, qopts);
    for (AccessSemantics sem :
         {AccessSemantics::kBinding, AccessSemantics::kView}) {
      for (SubjectId s = 0; s < kSubjects; ++s) {
        EvalOptions eopts;
        eopts.semantics = sem;
        eopts.subject = s;
        auto a = want.Evaluate(q, eopts);
        auto b = got.Evaluate(q, eopts);
        ASSERT_TRUE(a.ok() && b.ok()) << a.status() << " / " << b.status();
        EXPECT_EQ(b->answers, a->answers)
            << "subject " << s << ": " << q.ToString();
        EXPECT_EQ(b->exec.access_only_fetches, 0u);
      }
    }
  }
}

}  // namespace
}  // namespace secxml
