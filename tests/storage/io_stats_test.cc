// IoStats under concurrency: the counters are atomics, so increments from
// many threads must sum exactly — no torn or dropped updates — and a pool
// shared by concurrent fetchers must account every fetch as exactly one of
// {cache hit, physical read}.

#include "storage/io_stats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/paged_file.h"

namespace secxml {
namespace {

TEST(IoStatsTest, ConcurrentIncrementsSumExactly) {
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  IoStats stats;

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&stats]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        // Both idioms used by the codebase: bare ++ (matcher's page-skip
        // accounting) and relaxed fetch_add (buffer pool internals).
        ++stats.page_reads;
        stats.page_writes.fetch_add(1, std::memory_order_relaxed);
        ++stats.cache_hits;
        stats.pages_skipped.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(stats.page_reads, kThreads * kPerThread);
  EXPECT_EQ(stats.page_writes, kThreads * kPerThread);
  EXPECT_EQ(stats.cache_hits, kThreads * kPerThread);
  EXPECT_EQ(stats.pages_skipped, kThreads * kPerThread);
}

TEST(IoStatsTest, SnapshotAndDelta) {
  IoStats stats;
  stats.page_reads = 10;
  stats.cache_hits = 7;
  IoStatsSnapshot before = stats.Snapshot();
  stats.page_reads += 5;
  stats.page_writes += 2;
  IoStatsSnapshot delta = stats.Snapshot() - before;
  EXPECT_EQ(delta.page_reads, 5u);
  EXPECT_EQ(delta.page_writes, 2u);
  EXPECT_EQ(delta.cache_hits, 0u);

  stats.Reset();
  EXPECT_EQ(stats.page_reads, 0u);
  EXPECT_EQ(stats.page_writes, 0u);
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.pages_skipped, 0u);
}

TEST(IoStatsTest, ConcurrentPoolFetchesAccountExactly) {
  constexpr size_t kThreads = 4;
  constexpr int kFetchesPerThread = 3000;
  constexpr PageId kPages = 32;

  MemPagedFile file;
  for (PageId i = 0; i < kPages; ++i) ASSERT_TRUE(file.AllocatePage().ok());
  // Pool smaller than the working set: a mix of hits and evicting misses.
  BufferPool pool(&file, 8, 4);

  std::atomic<uint64_t> successes{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Rng rng(31 * (t + 1));
      for (int i = 0; i < kFetchesPerThread; ++i) {
        auto h = pool.Fetch(static_cast<PageId>(rng.Uniform(kPages)));
        if (h.ok()) successes.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  // Every successful fetch was classified as exactly one of hit/read.
  EXPECT_EQ(pool.stats().cache_hits + pool.stats().page_reads,
            successes.load());
  EXPECT_GT(pool.stats().page_reads, 0u);
  EXPECT_GT(pool.stats().cache_hits, 0u);
  // Clean pages only: eviction never wrote anything back.
  EXPECT_EQ(pool.stats().page_writes, 0u);
}

}  // namespace
}  // namespace secxml
