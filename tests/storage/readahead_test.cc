// Readahead prefetcher contract: requested pages become buffer-pool
// residents (so the issuer's later Fetch is a cache hit), Drain() really
// waits for every in-flight fetch, duplicate/overflow requests are dropped
// rather than queued twice, and concurrent requesters plus foreground
// fetches on the same pool race safely (run under TSan via -L concurrency).

#include "storage/readahead.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/fault_file.h"
#include "storage/paged_file.h"

namespace secxml {
namespace {

class ReadaheadTest : public ::testing::Test {
 protected:
  void FillFile(int pages) {
    for (int i = 0; i < pages; ++i) {
      auto r = file_.AllocatePage();
      ASSERT_TRUE(r.ok());
      Page p;
      p.Zero();
      p.WriteAt<uint32_t>(0, static_cast<uint32_t>(i + 100));
      ASSERT_TRUE(file_.WritePage(*r, p).ok());
    }
  }

  MemPagedFile file_;
};

TEST_F(ReadaheadTest, PrefetchedPageIsCacheHit) {
  FillFile(4);
  BufferPool pool(&file_, 8);
  Readahead ra(&pool, /*num_workers=*/1);
  ra.Request(2);
  ra.Drain();
  EXPECT_EQ(pool.stats().page_reads, 1u);
  auto h = pool.Fetch(2);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->page().ReadAt<uint32_t>(0), 102u);
  EXPECT_EQ(pool.stats().page_reads, 1u) << "fetch should hit the cache";
  EXPECT_EQ(pool.stats().cache_hits, 1u);
}

TEST_F(ReadaheadTest, DrainWaitsForAllRequests) {
  constexpr int kPages = 64;
  FillFile(kPages);
  BufferPool pool(&file_, kPages);
  Readahead ra(&pool, /*num_workers=*/4);
  for (int i = 0; i < kPages; ++i) {
    ra.Request(static_cast<PageId>(i));
  }
  ra.Drain();
  Readahead::Stats stats = ra.stats();
  // Queue capacity covers the burst and no page repeats, so nothing drops
  // and every accepted request was fetched exactly once by drain time.
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.completed, stats.requested);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(pool.stats().page_reads, stats.completed);
  // After the drain every page is resident: re-fetching reads nothing.
  uint64_t reads_before = pool.stats().page_reads;
  for (int i = 0; i < kPages; ++i) {
    auto h = pool.Fetch(static_cast<PageId>(i));
    ASSERT_TRUE(h.ok());
  }
  EXPECT_EQ(pool.stats().page_reads, reads_before);
}

TEST_F(ReadaheadTest, DuplicateRequestsAreDropped) {
  FillFile(2);
  // A slow read keeps the first fetch in flight (or still queued) for the
  // whole request burst: without it, a single-core scheduler can let the
  // worker complete each fetch between Request calls so no duplicate ever
  // meets the queue and dropped stays 0.
  LatencyPagedFile slow(&file_, std::chrono::milliseconds(20));
  BufferPool pool(&slow, 4);
  // Zero workers is clamped to one; queue the same page repeatedly before
  // it can complete — the queue dedups.
  Readahead ra(&pool, /*num_workers=*/1, /*max_queue=*/4);
  for (int i = 0; i < 100; ++i) ra.Request(1);
  ra.Drain();
  Readahead::Stats stats = ra.stats();
  EXPECT_GE(stats.dropped, 1u);
  EXPECT_EQ(stats.requested + stats.dropped, 100u);
}

TEST_F(ReadaheadTest, DestructorJoinsWorkers) {
  FillFile(32);
  BufferPool pool(&file_, 32);
  {
    Readahead ra(&pool, /*num_workers=*/2);
    for (int i = 0; i < 32; ++i) ra.Request(static_cast<PageId>(i));
    // No drain: the destructor must stop cleanly mid-queue.
  }
  SUCCEED();
}

TEST_F(ReadaheadTest, DrainGuardToleratesNull) {
  { ReadaheadDrainGuard guard(nullptr); }
  SUCCEED();
}

TEST_F(ReadaheadTest, FailedPrefetchesAreCountedAndSurfaceFirstError) {
  FillFile(4);
  FaultInjectingPagedFile fault(&file_);
  BufferPool pool(&fault, 8);
  Readahead ra(&pool, /*num_workers=*/1);

  fault.SetPageFault(1, /*fail_reads=*/true, /*fail_writes=*/false);
  fault.SetPageFault(3, /*fail_reads=*/true, /*fail_writes=*/false);
  for (PageId id = 0; id < 4; ++id) ra.Request(id);
  // Drain must not deadlock on failed fetches: every accepted request
  // completes, successfully or not.
  ra.Drain();
  Readahead::Stats stats = ra.stats();
  EXPECT_EQ(stats.completed, stats.requested);
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.first_error.code(), StatusCode::kIOError);
  EXPECT_NE(stats.first_error.message().find("injected"), std::string::npos);

  // A failed prefetch degrades, never poisons: the foreground fetch gets
  // the real bytes once the fault clears.
  fault.ClearPageFaults();
  auto h = pool.Fetch(1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->page().ReadAt<uint32_t>(0), 101u);
}

TEST_F(ReadaheadTest, ConcurrentRequestersAndForegroundFetches) {
  constexpr int kPages = 128;
  FillFile(kPages);
  // Small enough that the sweep constantly evicts, but with headroom per
  // shard for every transient pin (2 readers + 3 workers).
  BufferPool pool(&file_, 32, /*num_shards=*/4);
  Readahead ra(&pool, /*num_workers=*/3);

  std::atomic<bool> failed{false};
  auto requester = [&](int offset) {
    for (int round = 0; round < 50; ++round) {
      ra.Request(static_cast<PageId>((round * 7 + offset) % kPages));
      if (round % 16 == 0) ra.Drain();
    }
    ra.Drain();
  };
  auto reader = [&](int seed) {
    for (int round = 0; round < 200; ++round) {
      PageId id = static_cast<PageId>((round * 13 + seed) % kPages);
      auto h = pool.Fetch(id);
      if (!h.ok() || h->page().ReadAt<uint32_t>(0) != 100u + id) {
        failed = true;
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(requester, 0);
  threads.emplace_back(requester, 3);
  threads.emplace_back(reader, 1);
  threads.emplace_back(reader, 5);
  for (auto& t : threads) t.join();
  ra.Drain();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ra.stats().failed, 0u);
}

}  // namespace
}  // namespace secxml
