// WriteAheadLog unit tests: append/replay round-trips, reopen persistence,
// truncation, torn-tail drop, dual-slot header resilience, and the
// failed-append invalidation contract ("the commit did not happen" must be
// just as durable as a commit).

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "storage/fault_file.h"
#include "storage/paged_file.h"

namespace secxml {
namespace {

std::vector<WriteAheadLog::Record> Collect(const WriteAheadLog& wal,
                                           uint64_t after_lsn = 0) {
  std::vector<WriteAheadLog::Record> out;
  EXPECT_TRUE(wal.Replay(after_lsn, [&](const WriteAheadLog::Record& r) {
                   out.push_back(r);
                   return Status::OK();
                 }).ok());
  return out;
}

// Byte-copies a paged file (the crash model: whatever reached the device).
void Snapshot(PagedFile* src, MemPagedFile* dst) {
  Page page;
  for (PageId id = 0; id < src->NumPages(); ++id) {
    ASSERT_TRUE(src->ReadPage(id, &page).ok());
    auto alloc = dst->AllocatePage();
    ASSERT_TRUE(alloc.ok());
    ASSERT_TRUE(dst->WritePage(*alloc, page).ok());
  }
}

TEST(WalTest, AppendReplayRoundTrip) {
  MemPagedFile file;
  auto wal_or = WriteAheadLog::Open(&file);
  ASSERT_TRUE(wal_or.ok()) << wal_or.status();
  WriteAheadLog& wal = **wal_or;

  auto l1 = wal.Append(7, "first");
  auto l2 = wal.Append(9, std::string(5000, 'x'));  // spans pages
  auto l3 = wal.Append(7, "");                      // empty payload is legal
  ASSERT_TRUE(l1.ok() && l2.ok() && l3.ok());
  EXPECT_LT(*l1, *l2);
  EXPECT_LT(*l2, *l3);
  EXPECT_EQ(wal.num_records(), 3u);

  std::vector<WriteAheadLog::Record> got = Collect(wal);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].type, 7u);
  EXPECT_EQ(got[0].payload, "first");
  EXPECT_EQ(got[1].payload.size(), 5000u);
  EXPECT_EQ(got[2].payload, "");

  // Replay honours after_lsn.
  got = Collect(wal, *l1);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].lsn, *l2);
}

TEST(WalTest, ReopenRestoresRecordsAndLsn) {
  MemPagedFile file;
  uint64_t last_lsn = 0;
  {
    auto wal = WriteAheadLog::Open(&file);
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 20; ++i) {
      auto lsn = (*wal)->Append(static_cast<uint32_t>(i % 3 + 1),
                                std::string(static_cast<size_t>(i) * 37, 'a'));
      ASSERT_TRUE(lsn.ok());
      last_lsn = *lsn;
    }
  }
  auto wal = WriteAheadLog::Open(&file);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->num_records(), 20u);
  EXPECT_EQ((*wal)->stats().records_recovered, 20u);
  EXPECT_EQ((*wal)->stats().torn_tail, 0u);
  EXPECT_GT((*wal)->next_lsn(), last_lsn);
  std::vector<WriteAheadLog::Record> got = Collect(**wal);
  ASSERT_EQ(got.size(), 20u);
  EXPECT_EQ(got.back().lsn, last_lsn);

  // LSNs keep ascending across the reopen (no reuse).
  auto more = (*wal)->Append(1, "after reopen");
  ASSERT_TRUE(more.ok());
  EXPECT_GT(*more, last_lsn);
}

TEST(WalTest, TruncateDiscardsAndSurvivesReopen) {
  MemPagedFile file;
  auto wal = WriteAheadLog::Open(&file);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "a").ok());
  ASSERT_TRUE((*wal)->Append(2, "b").ok());
  uint64_t lsn_before = (*wal)->next_lsn();
  ASSERT_TRUE((*wal)->Truncate().ok());
  EXPECT_EQ((*wal)->num_records(), 0u);
  EXPECT_TRUE(Collect(**wal).empty());
  // LSN space is not reset by truncation (checkpoint LSNs stay comparable).
  EXPECT_EQ((*wal)->next_lsn(), lsn_before);

  auto l = (*wal)->Append(3, "after truncate");
  ASSERT_TRUE(l.ok());

  auto reopened = WriteAheadLog::Open(&file);
  ASSERT_TRUE(reopened.ok());
  std::vector<WriteAheadLog::Record> got = Collect(**reopened);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].type, 3u);
  EXPECT_EQ(got[0].payload, "after truncate");
}

TEST(WalTest, TornTailIsDroppedOnOpen) {
  MemPagedFile base;
  FaultInjectingPagedFile fault(&base);
  fault.set_enabled(false);
  auto wal = WriteAheadLog::Open(&fault);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "committed-1").ok());
  ASSERT_TRUE((*wal)->Append(1, "committed-2").ok());

  // The third append dies with a torn page write: half-new bytes reach the
  // device, the append reports failure, and invalidation cannot land either
  // (the page stays persistently bad).
  FaultOptions chaos;
  chaos.torn_writes = true;
  chaos.persistent = true;
  chaos.write_fault_prob = 1.0;
  fault.SetOptions(chaos);
  fault.set_enabled(true);
  auto bad = (*wal)->Append(1, std::string(3000, 'z'));
  EXPECT_FALSE(bad.ok());
  EXPECT_GT(fault.stats().torn_writes, 0u);
  fault.set_enabled(false);
  fault.ClearPageFaults();

  // Crash: reopen from the device image. The committed prefix survives, the
  // torn tail is silently dropped and reported in stats.
  auto recovered = WriteAheadLog::Open(&base);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  std::vector<WriteAheadLog::Record> got = Collect(**recovered);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].payload, "committed-1");
  EXPECT_EQ(got[1].payload, "committed-2");

  // The log remains fully usable after dropping the tail.
  auto next = (*recovered)->Append(2, "post-recovery");
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(Collect(**recovered).size(), 3u);
}

TEST(WalTest, FailedAppendIsInvalidatedOnDevice) {
  MemPagedFile base;
  FaultInjectingPagedFile fault(&base);
  fault.set_enabled(false);
  auto wal = WriteAheadLog::Open(&fault);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "keep").ok());

  // The record's bytes reach the device but the sync dies; invalidation
  // (magic zeroing) succeeds, so the record must not resurrect at recovery.
  fault.set_enabled(true);
  fault.FailNext(FaultOp::kSync, 1);
  auto bad = (*wal)->Append(1, "must-not-resurrect");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ((*wal)->stats().append_failures, 1u);
  fault.set_enabled(false);

  auto recovered = WriteAheadLog::Open(&base);
  ASSERT_TRUE(recovered.ok());
  std::vector<WriteAheadLog::Record> got = Collect(**recovered);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].payload, "keep");
}

TEST(WalTest, TornHeaderDuringTruncateKeepsOtherSlot) {
  MemPagedFile base;
  FaultInjectingPagedFile fault(&base);
  fault.set_enabled(false);
  auto wal = WriteAheadLog::Open(&fault);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(4, "pre-truncate-1").ok());
  ASSERT_TRUE((*wal)->Append(4, "pre-truncate-2").ok());

  // Truncate tears its header write (page 0). The previously active slot is
  // untouched by the torn image's committed prefix... but a torn page can
  // damage either slot; the dual-slot scheme guarantees at least one CRC
  // passes because slots are written alternately, never both in one call.
  FaultOptions chaos;
  chaos.torn_writes = true;
  chaos.write_fault_prob = 1.0;
  fault.SetOptions(chaos);
  fault.set_enabled(true);
  Status st = (*wal)->Truncate();
  EXPECT_FALSE(st.ok());
  fault.set_enabled(false);

  // Crash: the reopened log is coherent — either the truncation took effect
  // (zero records) or it did not (both records intact). Never corruption,
  // never a partial state.
  auto recovered = WriteAheadLog::Open(&base);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  size_t n = Collect(**recovered).size();
  EXPECT_TRUE(n == 0u || n == 2u) << n << " records after torn truncate";
}

TEST(WalTest, CrashAtEveryRecordBoundaryRecoversPrefix) {
  // The exhaustive boundary sweep at WAL granularity: snapshot the device
  // after every append and verify each image recovers exactly its prefix.
  MemPagedFile live;
  auto wal = WriteAheadLog::Open(&live);
  ASSERT_TRUE(wal.ok());
  constexpr int kRecords = 12;
  std::vector<std::unique_ptr<MemPagedFile>> images;
  images.push_back(std::make_unique<MemPagedFile>());
  Snapshot(&live, images.back().get());  // before any record
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(
        (*wal)->Append(static_cast<uint32_t>(i + 1),
                       std::string(static_cast<size_t>(i) * 211 + 3, 'p'))
            .ok());
    images.push_back(std::make_unique<MemPagedFile>());
    Snapshot(&live, images.back().get());
  }
  for (int k = 0; k <= kRecords; ++k) {
    auto recovered = WriteAheadLog::Open(images[static_cast<size_t>(k)].get());
    ASSERT_TRUE(recovered.ok()) << "crash point " << k;
    std::vector<WriteAheadLog::Record> got = Collect(**recovered);
    ASSERT_EQ(got.size(), static_cast<size_t>(k)) << "crash point " << k;
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ(got[static_cast<size_t>(i)].type,
                static_cast<uint32_t>(i + 1));
      EXPECT_EQ(got[static_cast<size_t>(i)].payload.size(),
                static_cast<size_t>(i) * 211 + 3);
    }
  }
}

TEST(WalTest, ReplayStopsAtFirstError) {
  MemPagedFile file;
  auto wal = WriteAheadLog::Open(&file);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append(1, "a").ok());
  ASSERT_TRUE((*wal)->Append(1, "b").ok());
  ASSERT_TRUE((*wal)->Append(1, "c").ok());
  int seen = 0;
  Status st = (*wal)->Replay(0, [&](const WriteAheadLog::Record&) {
    if (++seen == 2) return Status::Corruption("stop here");
    return Status::OK();
  });
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_EQ(seen, 2);
}

}  // namespace
}  // namespace secxml
