// Unit tests for the visibility-clustered vacuum planner: the pure
// page-boundary re-cutting pass that NokStore::Repack and SecureStore::Vacuum
// build on. Pins geometry safety (every planned page fits), the
// homogeneous/mixed page accounting, min_run_records behavior at both
// extremes, and determinism (WAL replay re-runs the planner and must get the
// identical plan).

#include "storage/vacuum.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace secxml {
namespace {

// The real NoK geometry: 4 KiB pages, 16 B header, 16 B records, 8 B
// transitions.
PageGeometry NokGeometry() {
  return PageGeometry{/*page_bytes=*/4096, /*header_bytes=*/16,
                      /*record_bytes=*/16, /*transition_bytes=*/8};
}

// Records per planned page p.
size_t PageCount(const VacuumPlan& plan, size_t p, size_t total) {
  const size_t start = static_cast<size_t>(plan.page_starts[p]);
  const size_t end = p + 1 < plan.page_starts.size()
                         ? static_cast<size_t>(plan.page_starts[p + 1])
                         : total;
  return end - start;
}

size_t PageTransitions(const std::vector<uint32_t>& codes,
                       const VacuumPlan& plan, size_t p) {
  const size_t start = static_cast<size_t>(plan.page_starts[p]);
  const size_t end = p + 1 < plan.page_starts.size()
                         ? static_cast<size_t>(plan.page_starts[p + 1])
                         : codes.size();
  size_t t = 0;
  for (size_t i = start + 1; i < end; ++i) {
    if (codes[i] != codes[i - 1]) ++t;
  }
  return t;
}

void CheckPlanInvariants(const std::vector<uint32_t>& codes,
                         const VacuumPlan& plan, const PageGeometry& g,
                         const VacuumPlanOptions& opts) {
  ASSERT_FALSE(plan.page_starts.empty());
  EXPECT_EQ(plan.page_starts[0], 0u);
  size_t homogeneous = 0, mixed = 0, transitions = 0;
  for (size_t p = 0; p < plan.page_starts.size(); ++p) {
    if (p > 0) ASSERT_GT(plan.page_starts[p], plan.page_starts[p - 1]);
    const size_t count = PageCount(plan, p, codes.size());
    const size_t t = PageTransitions(codes, plan, p);
    ASSERT_GT(count, 0u);
    // Every page honors the geometry including the update slack.
    EXPECT_LE(g.header_bytes + count * g.record_bytes +
                  (t + opts.transition_slack) * g.transition_bytes,
              g.page_bytes)
        << "page " << p;
    if (opts.max_records_per_page > 0) {
      EXPECT_LE(count, opts.max_records_per_page) << "page " << p;
    }
    if (t == 0) {
      ++homogeneous;
    } else {
      ++mixed;
    }
    transitions += t;
  }
  EXPECT_EQ(plan.homogeneous_pages, homogeneous);
  EXPECT_EQ(plan.mixed_pages, mixed);
  EXPECT_EQ(plan.transitions, transitions);
  EXPECT_EQ(plan.homogeneous_pages + plan.mixed_pages,
            plan.page_starts.size());
}

TEST(VacuumPlanTest, EmptyInputYieldsEmptyPlan) {
  VacuumPlan plan = PlanVisibilityClusteredLayout({}, NokGeometry(), {});
  EXPECT_TRUE(plan.page_starts.empty());
  EXPECT_EQ(plan.homogeneous_pages, 0u);
  EXPECT_EQ(plan.mixed_pages, 0u);
}

TEST(VacuumPlanTest, UniformCodesPackToCapacity) {
  std::vector<uint32_t> codes(1000, 3);
  VacuumPlanOptions opts;
  opts.max_records_per_page = 100;
  VacuumPlan plan =
      PlanVisibilityClusteredLayout(codes, NokGeometry(), opts);
  CheckPlanInvariants(codes, plan, NokGeometry(), opts);
  EXPECT_EQ(plan.page_starts.size(), 10u);
  EXPECT_EQ(plan.homogeneous_pages, 10u);
  EXPECT_EQ(plan.mixed_pages, 0u);
  EXPECT_EQ(plan.transitions, 0u);
}

TEST(VacuumPlanTest, LongRunsGetTheirOwnHomogeneousPages) {
  // Three runs, each >> min_run_records: every page must be homogeneous.
  std::vector<uint32_t> codes;
  codes.insert(codes.end(), 150, 0);
  codes.insert(codes.end(), 90, 1);
  codes.insert(codes.end(), 200, 2);
  VacuumPlanOptions opts;
  opts.max_records_per_page = 64;
  opts.min_run_records = 16;
  VacuumPlan plan =
      PlanVisibilityClusteredLayout(codes, NokGeometry(), opts);
  CheckPlanInvariants(codes, plan, NokGeometry(), opts);
  EXPECT_EQ(plan.mixed_pages, 0u);
  EXPECT_EQ(plan.transitions, 0u);
}

TEST(VacuumPlanTest, MinRunZeroCutsEveryBoundary) {
  std::vector<uint32_t> codes = {0, 0, 1, 1, 1, 0, 2, 2};
  VacuumPlanOptions opts;
  opts.min_run_records = 0;
  VacuumPlan plan =
      PlanVisibilityClusteredLayout(codes, NokGeometry(), opts);
  CheckPlanInvariants(codes, plan, NokGeometry(), opts);
  // Every code run lands on its own page: 4 runs, all homogeneous.
  EXPECT_EQ(plan.page_starts,
            (std::vector<uint64_t>{0, 2, 5, 6}));
  EXPECT_EQ(plan.homogeneous_pages, 4u);
  EXPECT_EQ(plan.transitions, 0u);
}

TEST(VacuumPlanTest, LargeMinRunCoalescesShortRunsIntoMixedPages) {
  // Alternating short runs with a huge min_run: the planner must not cut at
  // run boundaries, so pages fill to capacity and embed transitions.
  std::vector<uint32_t> codes;
  for (int i = 0; i < 200; ++i) codes.push_back(static_cast<uint32_t>(i % 2));
  VacuumPlanOptions opts;
  opts.max_records_per_page = 50;
  opts.min_run_records = 1000;
  VacuumPlan plan =
      PlanVisibilityClusteredLayout(codes, NokGeometry(), opts);
  CheckPlanInvariants(codes, plan, NokGeometry(), opts);
  EXPECT_EQ(plan.page_starts.size(), 4u);
  EXPECT_EQ(plan.homogeneous_pages, 0u);
  EXPECT_EQ(plan.mixed_pages, 4u);
}

TEST(VacuumPlanTest, TransitionSlackShrinksEffectiveCapacity) {
  // A tiny page that fits 6 records with no slack but fewer once every page
  // must reserve slack transition slots.
  PageGeometry g{/*page_bytes=*/16 + 6 * 16, /*header_bytes=*/16,
                 /*record_bytes=*/16, /*transition_bytes=*/8};
  std::vector<uint32_t> codes(24, 7);
  VacuumPlanOptions none, slack;
  slack.transition_slack = 4;  // 32 bytes reserved = 2 records' worth
  VacuumPlan p_none = PlanVisibilityClusteredLayout(codes, g, none);
  VacuumPlan p_slack = PlanVisibilityClusteredLayout(codes, g, slack);
  CheckPlanInvariants(codes, p_none, g, none);
  CheckPlanInvariants(codes, p_slack, g, slack);
  EXPECT_EQ(p_none.page_starts.size(), 4u);   // 6 per page
  EXPECT_EQ(p_slack.page_starts.size(), 6u);  // 4 per page
}

TEST(VacuumPlanTest, RandomizedInvariantsAndDeterminism) {
  Rng rng(42);
  for (int iter = 0; iter < 30; ++iter) {
    // Random code sequence with clustered runs of random length.
    std::vector<uint32_t> codes;
    const size_t n = 100 + rng.Uniform(2000);
    while (codes.size() < n) {
      const uint32_t code = static_cast<uint32_t>(rng.Uniform(8));
      const size_t run = 1 + rng.Uniform(60);
      codes.insert(codes.end(), run, code);
    }
    VacuumPlanOptions opts;
    opts.max_records_per_page = 16 + rng.Uniform(100);
    opts.min_run_records = rng.Uniform(40);
    opts.transition_slack = rng.Uniform(4);
    VacuumPlan plan =
        PlanVisibilityClusteredLayout(codes, NokGeometry(), opts);
    CheckPlanInvariants(codes, plan, NokGeometry(), opts);

    // Determinism: identical input -> identical plan (WAL replay relies on
    // this).
    VacuumPlan again =
        PlanVisibilityClusteredLayout(codes, NokGeometry(), opts);
    EXPECT_EQ(plan.page_starts, again.page_starts);
    EXPECT_EQ(plan.homogeneous_pages, again.homogeneous_pages);
    EXPECT_EQ(plan.mixed_pages, again.mixed_pages);
    EXPECT_EQ(plan.transitions, again.transitions);
  }
}

}  // namespace
}  // namespace secxml
