#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "storage/fault_file.h"

namespace secxml {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void FillFile(int pages) {
    for (int i = 0; i < pages; ++i) {
      auto r = file_.AllocatePage();
      ASSERT_TRUE(r.ok());
      Page p;
      p.Zero();
      p.WriteAt<uint32_t>(0, static_cast<uint32_t>(i + 100));
      ASSERT_TRUE(file_.WritePage(*r, p).ok());
    }
  }

  MemPagedFile file_;
};

TEST_F(BufferPoolTest, FetchReadsThrough) {
  FillFile(3);
  BufferPool pool(&file_, 2);
  auto h = pool.Fetch(1);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->page().ReadAt<uint32_t>(0), 101u);
  EXPECT_EQ(pool.stats().page_reads, 1u);
  EXPECT_EQ(pool.stats().cache_hits, 0u);
}

TEST_F(BufferPoolTest, SecondFetchHitsCache) {
  FillFile(2);
  BufferPool pool(&file_, 2);
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().page_reads, 1u);
  EXPECT_EQ(pool.stats().cache_hits, 1u);
}

TEST_F(BufferPoolTest, LruEvictsLeastRecentlyUsed) {
  FillFile(3);
  BufferPool pool(&file_, 2);
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(1); ASSERT_TRUE(h.ok()); }
  // Touch 0 so 1 becomes the LRU victim.
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(2); ASSERT_TRUE(h.ok()); }  // evicts 1
  EXPECT_EQ(pool.stats().page_reads, 3u);
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }  // still cached
  EXPECT_EQ(pool.stats().page_reads, 3u);
  { auto h = pool.Fetch(1); ASSERT_TRUE(h.ok()); }  // must re-read
  EXPECT_EQ(pool.stats().page_reads, 4u);
}

TEST_F(BufferPoolTest, DirtyPagesWrittenBackOnEviction) {
  FillFile(2);
  BufferPool pool(&file_, 1);
  {
    auto h = pool.Fetch(0);
    ASSERT_TRUE(h.ok());
    h->mutable_page()->WriteAt<uint32_t>(0, 777u);
    h->MarkDirty();
  }
  { auto h = pool.Fetch(1); ASSERT_TRUE(h.ok()); }  // evicts dirty page 0
  EXPECT_EQ(pool.stats().page_writes, 1u);
  Page p;
  ASSERT_TRUE(file_.ReadPage(0, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 777u);
}

TEST_F(BufferPoolTest, CleanPagesNotWrittenBack) {
  FillFile(2);
  BufferPool pool(&file_, 1);
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }
  { auto h = pool.Fetch(1); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().page_writes, 0u);
}

TEST_F(BufferPoolTest, PinnedPagesCannotBeEvicted) {
  FillFile(3);
  BufferPool pool(&file_, 2);
  auto h0 = pool.Fetch(0);
  ASSERT_TRUE(h0.ok());
  auto h1 = pool.Fetch(1);
  ASSERT_TRUE(h1.ok());
  // Both frames pinned: a third fetch must fail.
  auto h2 = pool.Fetch(2);
  EXPECT_FALSE(h2.ok());
  EXPECT_EQ(h2.status().code(), StatusCode::kIOError);
  // Releasing one pin frees a frame.
  h0->Release();
  auto h2b = pool.Fetch(2);
  EXPECT_TRUE(h2b.ok());
}

TEST_F(BufferPoolTest, AllocateCreatesZeroedDirtyPage) {
  BufferPool pool(&file_, 2);
  auto h = pool.Allocate();
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->page_id(), 0u);
  EXPECT_EQ(file_.NumPages(), 1u);
  EXPECT_EQ(h->page().ReadAt<uint32_t>(0), 0u);
  h->mutable_page()->WriteAt<uint32_t>(0, 5u);
  h->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  Page p;
  ASSERT_TRUE(file_.ReadPage(0, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 5u);
}

TEST_F(BufferPoolTest, FlushAllWritesAllDirty) {
  FillFile(3);
  BufferPool pool(&file_, 3);
  for (PageId i = 0; i < 3; ++i) {
    auto h = pool.Fetch(i);
    ASSERT_TRUE(h.ok());
    h->mutable_page()->WriteAt<uint32_t>(4, i + 1);
    h->MarkDirty();
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.stats().page_writes, 3u);
  for (PageId i = 0; i < 3; ++i) {
    Page p;
    ASSERT_TRUE(file_.ReadPage(i, &p).ok());
    EXPECT_EQ(p.ReadAt<uint32_t>(4), i + 1);
  }
  // Second flush is a no-op.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.stats().page_writes, 3u);
}

TEST_F(BufferPoolTest, EvictAllDropsUnpinned) {
  FillFile(2);
  BufferPool pool(&file_, 2);
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }
  auto pinned = pool.Fetch(1);
  ASSERT_TRUE(pinned.ok());
  ASSERT_TRUE(pool.EvictAll().ok());
  EXPECT_EQ(pool.num_cached(), 1u);  // the pinned one stays
  { auto h = pool.Fetch(0); ASSERT_TRUE(h.ok()); }
  EXPECT_EQ(pool.stats().page_reads, 3u);  // 0 was re-read
}

TEST_F(BufferPoolTest, MoveHandleTransfersPin) {
  FillFile(1);
  BufferPool pool(&file_, 1);
  auto h = pool.Fetch(0);
  ASSERT_TRUE(h.ok());
  PageHandle moved = std::move(*h);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(pool.num_pinned(), 1u);
  moved.Release();
  EXPECT_EQ(pool.num_pinned(), 0u);
}

TEST_F(BufferPoolTest, FlushAllSkipsPinnedFrames) {
  FillFile(2);
  BufferPool pool(&file_, 2);
  auto h = pool.Fetch(0);
  ASSERT_TRUE(h.ok());
  h->mutable_page()->WriteAt<uint32_t>(0, 999u);
  h->MarkDirty();
  // The holder is mid-modification: flushing now would persist a torn page
  // and clearing the dirty bit would lose the rest of the update.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.stats().page_writes, 0u);
  Page p;
  ASSERT_TRUE(file_.ReadPage(0, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 100u);  // on-disk image untouched
  h->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(pool.stats().page_writes, 1u);
  ASSERT_TRUE(file_.ReadPage(0, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 999u);  // written once unpinned
}

TEST_F(BufferPoolTest, FetchFailureReturnsFrameToFreeList) {
  FillFile(2);
  FaultInjectingPagedFile fault(&file_);
  BufferPool pool(&fault, 2);
  fault.FailNext(FaultOp::kRead, 1);
  auto h = pool.Fetch(0);
  ASSERT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kIOError);
  // No leaked pin, no half-installed frame.
  EXPECT_EQ(pool.num_pinned(), 0u);
  EXPECT_EQ(pool.num_cached(), 0u);
  // Both frames still usable, and the failed page was not cached: the next
  // fetch re-reads it (and gets fresh bytes, not a poisoned image).
  auto h0 = pool.Fetch(0);
  ASSERT_TRUE(h0.ok());
  EXPECT_EQ(h0->page().ReadAt<uint32_t>(0), 100u);
  auto h1 = pool.Fetch(1);
  ASSERT_TRUE(h1.ok());
}

TEST_F(BufferPoolTest, FlushAllContinuesPastWriteError) {
  FillFile(3);
  FaultInjectingPagedFile fault(&file_);
  BufferPool pool(&fault, 3);
  for (PageId i = 0; i < 3; ++i) {
    auto h = pool.Fetch(i);
    ASSERT_TRUE(h.ok());
    h->mutable_page()->WriteAt<uint32_t>(0, 200u + i);
    h->MarkDirty();
  }
  fault.SetPageFault(1, /*fail_reads=*/false, /*fail_writes=*/true);
  Status st = pool.FlushAll();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // The healthy pages were not abandoned because of the sick one.
  Page p;
  ASSERT_TRUE(file_.ReadPage(0, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 200u);
  ASSERT_TRUE(file_.ReadPage(2, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 202u);
  ASSERT_TRUE(file_.ReadPage(1, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 101u);  // failed write changed nothing
  // The failed frame stayed dirty: once the fault clears, a flush retries
  // it and nothing is lost.
  fault.ClearPageFaults();
  ASSERT_TRUE(pool.FlushAll().ok());
  ASSERT_TRUE(file_.ReadPage(1, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 201u);
}

TEST_F(BufferPoolTest, EvictAllContinuesPastWriteError) {
  FillFile(3);
  FaultInjectingPagedFile fault(&file_);
  BufferPool pool(&fault, 3);
  for (PageId i = 0; i < 3; ++i) {
    auto h = pool.Fetch(i);
    ASSERT_TRUE(h.ok());
    h->mutable_page()->WriteAt<uint32_t>(0, 300u + i);
    h->MarkDirty();
  }
  fault.SetPageFault(1, /*fail_reads=*/false, /*fail_writes=*/true);
  Status st = pool.EvictAll();
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // Healthy frames were evicted (written back and dropped); the failed one
  // stays resident and dirty rather than losing its update.
  EXPECT_EQ(pool.num_cached(), 1u);
  Page p;
  ASSERT_TRUE(file_.ReadPage(0, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 300u);
  ASSERT_TRUE(file_.ReadPage(2, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 302u);
  fault.ClearPageFaults();
  ASSERT_TRUE(pool.EvictAll().ok());
  EXPECT_EQ(pool.num_cached(), 0u);
  ASSERT_TRUE(file_.ReadPage(1, &p).ok());
  EXPECT_EQ(p.ReadAt<uint32_t>(0), 301u);
}

TEST_F(BufferPoolTest, FetchUnallocatedPageFails) {
  BufferPool pool(&file_, 1);
  auto h = pool.Fetch(9);
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(h.status().code(), StatusCode::kOutOfRange);
  // The frame grabbed for the failed read is returned to the free list.
  FillFile(1);
  EXPECT_TRUE(pool.Fetch(0).ok());
}

}  // namespace
}  // namespace secxml
