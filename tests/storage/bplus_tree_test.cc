#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"

namespace secxml {
namespace {

std::unique_ptr<BPlusTree> NewTree(MemPagedFile* file, size_t pool = 64) {
  std::unique_ptr<BPlusTree> tree;
  Status st = BPlusTree::Create(file, pool, &tree);
  EXPECT_TRUE(st.ok()) << st;
  return tree;
}

TEST(BPlusTreeTest, EmptyTree) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  EXPECT_EQ(tree->num_entries(), 0u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_EQ(tree->Get(42).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree->CheckIntegrity().ok());
  std::vector<std::pair<uint64_t, uint64_t>> out;
  ASSERT_TRUE(tree->ScanToVector(0, ~0ULL, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(BPlusTreeTest, InsertAndGetFewKeys) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  for (uint64_t k : {5u, 1u, 9u, 3u, 7u}) {
    ASSERT_TRUE(tree->Insert(k, k * 100).ok());
  }
  EXPECT_EQ(tree->num_entries(), 5u);
  for (uint64_t k : {1u, 3u, 5u, 7u, 9u}) {
    auto v = tree->Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, k * 100);
  }
  EXPECT_EQ(tree->Get(4).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(tree->CheckIntegrity().ok());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  ASSERT_TRUE(tree->Insert(7, 1).ok());
  EXPECT_EQ(tree->Insert(7, 2).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree->num_entries(), 1u);
  auto v = tree->Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1u);
}

TEST(BPlusTreeTest, SequentialInsertForcesSplits) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  constexpr uint64_t kN = 20000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree->Insert(k, k ^ 0xabcdu).ok()) << k;
  }
  EXPECT_EQ(tree->num_entries(), kN);
  EXPECT_GE(tree->height(), 2u);
  ASSERT_TRUE(tree->CheckIntegrity().ok());
  for (uint64_t k = 0; k < kN; k += 97) {
    auto v = tree->Get(k);
    ASSERT_TRUE(v.ok()) << k;
    EXPECT_EQ(*v, k ^ 0xabcdu);
  }
}

TEST(BPlusTreeTest, RandomInsertMatchesReferenceMap) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  Rng rng(7);
  std::map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 30000; ++i) {
    uint64_t k = rng.Uniform(100000);
    uint64_t v = rng.Next();
    if (reference.emplace(k, v).second) {
      ASSERT_TRUE(tree->Insert(k, v).ok());
    } else {
      ASSERT_EQ(tree->Insert(k, v).code(), StatusCode::kAlreadyExists);
    }
  }
  ASSERT_EQ(tree->num_entries(), reference.size());
  ASSERT_TRUE(tree->CheckIntegrity().ok());
  // Full scan equals the reference map.
  std::vector<std::pair<uint64_t, uint64_t>> out;
  ASSERT_TRUE(tree->ScanToVector(0, ~0ULL, &out).ok());
  ASSERT_EQ(out.size(), reference.size());
  size_t i = 0;
  for (const auto& [k, v] : reference) {
    ASSERT_EQ(out[i].first, k);
    ASSERT_EQ(out[i].second, v);
    ++i;
  }
}

TEST(BPlusTreeTest, RangeScan) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree->Insert(k * 2, k).ok());  // even keys only
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  ASSERT_TRUE(tree->ScanToVector(100, 121, &out).ok());
  // Keys 100, 102, ..., 120.
  ASSERT_EQ(out.size(), 11u);
  EXPECT_EQ(out.front().first, 100u);
  EXPECT_EQ(out.back().first, 120u);
  // Scan starting between keys.
  ASSERT_TRUE(tree->ScanToVector(101, 105, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 102u);
  // Empty and inverted ranges.
  ASSERT_TRUE(tree->ScanToVector(1, 2, &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(tree->ScanToVector(50, 50, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(BPlusTreeTest, ScanEarlyStop) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  for (uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
  }
  int seen = 0;
  ASSERT_TRUE(tree->Scan(0, 1000, [&seen](uint64_t, uint64_t) {
    return ++seen < 10;
  }).ok());
  EXPECT_EQ(seen, 10);
}

TEST(BPlusTreeTest, DeleteRemovesKeys) {
  MemPagedFile file;
  auto tree = NewTree(&file);
  for (uint64_t k = 0; k < 3000; ++k) {
    ASSERT_TRUE(tree->Insert(k, k).ok());
  }
  for (uint64_t k = 0; k < 3000; k += 3) {
    ASSERT_TRUE(tree->Delete(k).ok());
  }
  EXPECT_EQ(tree->num_entries(), 2000u);
  EXPECT_EQ(tree->Delete(0).code(), StatusCode::kNotFound);
  ASSERT_TRUE(tree->CheckIntegrity().ok());
  for (uint64_t k = 0; k < 3000; ++k) {
    EXPECT_EQ(tree->Get(k).ok(), k % 3 != 0) << k;
  }
}

TEST(BPlusTreeTest, PersistsAcrossReopen) {
  MemPagedFile file;
  {
    auto tree = NewTree(&file);
    for (uint64_t k = 0; k < 10000; ++k) {
      ASSERT_TRUE(tree->Insert(k * 7, k).ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
  }
  std::unique_ptr<BPlusTree> reopened;
  ASSERT_TRUE(BPlusTree::Open(&file, 64, &reopened).ok());
  EXPECT_EQ(reopened->num_entries(), 10000u);
  ASSERT_TRUE(reopened->CheckIntegrity().ok());
  auto v = reopened->Get(7 * 1234);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1234u);
}

TEST(BPlusTreeTest, OpenRejectsGarbage) {
  MemPagedFile file;
  std::unique_ptr<BPlusTree> tree;
  EXPECT_FALSE(BPlusTree::Open(&file, 8, &tree).ok());
  ASSERT_TRUE(file.AllocatePage().ok());
  ASSERT_TRUE(file.AllocatePage().ok());
  EXPECT_EQ(BPlusTree::Open(&file, 8, &tree).code(), StatusCode::kCorruption);
}

TEST(BPlusTreeTest, CreateRejectsNonEmptyFile) {
  MemPagedFile file;
  ASSERT_TRUE(file.AllocatePage().ok());
  std::unique_ptr<BPlusTree> tree;
  EXPECT_FALSE(BPlusTree::Create(&file, 8, &tree).ok());
}

TEST(BPlusTreeTest, WorksWithTinyBufferPool) {
  // A 4-frame pool forces constant eviction; correctness must not depend on
  // residency.
  MemPagedFile file;
  auto tree = NewTree(&file, /*pool=*/4);
  Rng rng(13);
  std::map<uint64_t, uint64_t> reference;
  for (int i = 0; i < 8000; ++i) {
    uint64_t k = rng.Uniform(1u << 20);
    if (reference.emplace(k, k + 1).second) {
      ASSERT_TRUE(tree->Insert(k, k + 1).ok());
    }
  }
  ASSERT_TRUE(tree->CheckIntegrity().ok());
  for (const auto& [k, v] : reference) {
    auto got = tree->Get(k);
    ASSERT_TRUE(got.ok());
    ASSERT_EQ(*got, v);
  }
}

}  // namespace
}  // namespace secxml
