// Store-level tests for the secure VACUUM (visibility-clustered page
// reorganization). Contracts:
//
//  * Vacuum preserves the logical store exactly: the extracted labeling,
//    the codebook, and every query answer under both semantics are
//    byte-identical before and after — only page boundaries move.
//  * Clustering is real: homogeneous (change-bit-clear) pages do not
//    decrease, and on run-structured ACLs an all-denied region turns into
//    wholly-dead pages that the batch evaluator actually skips.
//  * Vacuum is a WAL-logged update: a crash after a non-checkpointing
//    vacuum replays the deterministic planner and recovers the identical
//    layout; the default checkpoint truncates the log.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "query/batch_evaluator.h"
#include "query/evaluator.h"
#include "query/xpath_parser.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kSubjects = 6;

NokStoreOptions StoreOptions() {
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  return sopts;
}

struct WalFixture {
  Document doc;
  MemPagedFile data;
  MemPagedFile wal;
  std::unique_ptr<SecureStore> store;
};

// Subtree-propagated ACLs: most-specific-override seeds yield long document-
// order runs of identical ACL columns — the layout vacuum clusters on.
void BuildWalFixture(uint64_t seed, uint32_t nodes, WalFixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 900;
  xopts.target_nodes = nodes;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  NodeId n = static_cast<NodeId>(f->doc.NumNodes());
  Rng rng(seed * 31 + 7);
  IntervalAccessMap map(n, kSubjects);
  for (SubjectId s = 0; s < kSubjects; ++s) {
    std::vector<AclSeed> seeds = {{0, rng.Bernoulli(0.7)}};
    for (int i = 0; i < 8; ++i) {
      seeds.push_back(
          {static_cast<NodeId>(rng.Uniform(n)), rng.Bernoulli(0.5)});
    }
    map.SetSubjectIntervals(s, PropagateMostSpecificOverride(f->doc, seeds));
  }
  DolLabeling labeling =
      DolLabeling::BuildFromEvents(n, map.InitialAcl(), map.CollectEvents());
  ASSERT_TRUE(SecureStore::BuildWithWal(f->doc, labeling, &f->data, &f->wal,
                                        StoreOptions(), &f->store)
                  .ok());
}

void SnapshotFile(PagedFile* src, MemPagedFile* dst) {
  Page page;
  for (PageId id = 0; id < src->NumPages(); ++id) {
    ASSERT_TRUE(src->ReadPage(id, &page).ok());
    auto alloc = dst->AllocatePage();
    ASSERT_TRUE(alloc.ok());
    ASSERT_TRUE(dst->WritePage(*alloc, page).ok());
  }
}

std::string Fingerprint(SecureStore* store) {
  auto labeling = store->ExtractLabeling();
  EXPECT_TRUE(labeling.ok()) << labeling.status();
  if (!labeling.ok()) return {};
  std::vector<uint8_t> bytes = labeling->Serialize();
  std::vector<uint8_t> cb = store->codebook().Serialize();
  std::string fp(bytes.begin(), bytes.end());
  fp.append(cb.begin(), cb.end());
  return fp;
}

std::vector<std::vector<NodeId>> AnswerSet(
    SecureStore* store, const std::vector<PatternTree>& queries) {
  std::vector<std::vector<NodeId>> out;
  QueryEvaluator eval(store);
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (const PatternTree& q : queries) {
      for (SubjectId s = 0; s < kSubjects; ++s) {
        EvalOptions opts;
        opts.semantics = sem;
        opts.subject = s;
        auto r = eval.Evaluate(q, opts);
        EXPECT_TRUE(r.ok()) << r.status();
        out.push_back(r.ok() ? r->answers : std::vector<NodeId>{});
      }
    }
  }
  return out;
}

size_t HomogeneousPages(SecureStore* store) {
  size_t h = 0;
  for (const auto& info : store->nok()->page_infos()) {
    if (!info.change_bit) ++h;
  }
  return h;
}

class VacuumStoreTest : public ::testing::TestWithParam<int> {};

TEST_P(VacuumStoreTest, PreservesLabelingAndAnswers) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  WalFixture f;
  BuildWalFixture(seed, 2000, &f);
  std::vector<PatternTree> queries;
  for (int i = 0; i < 4; ++i) {
    QueryGenOptions qopts;
    qopts.seed = seed * 130 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i % 4;
    queries.push_back(GenerateTwigQuery(f.doc, qopts));
  }
  const std::string fp_before = Fingerprint(f.store.get());
  const auto answers_before = AnswerSet(f.store.get(), queries);
  const size_t homogeneous_before = HomogeneousPages(f.store.get());

  SecureStore::VacuumOptions vopts;
  SecureStore::VacuumStats stats;
  ASSERT_TRUE(f.store->Vacuum(vopts, &stats).ok());

  EXPECT_EQ(stats.homogeneous_pages_before, homogeneous_before);
  EXPECT_EQ(stats.pages_after, f.store->nok()->page_infos().size());
  EXPECT_EQ(stats.homogeneous_pages_after, HomogeneousPages(f.store.get()));
  // Clustering never loses homogeneity.
  EXPECT_GE(stats.homogeneous_pages_after, stats.homogeneous_pages_before);
  EXPECT_GT(stats.homogeneous_pages_after, 0u);

  // The logical store is untouched.
  EXPECT_EQ(Fingerprint(f.store.get()), fp_before);
  EXPECT_EQ(AnswerSet(f.store.get(), queries), answers_before);

  // Idempotent: a second vacuum with the same knobs changes nothing.
  SecureStore::VacuumStats stats2;
  ASSERT_TRUE(f.store->Vacuum(vopts, &stats2).ok());
  EXPECT_EQ(stats2.pages_after, stats.pages_after);
  EXPECT_EQ(stats2.homogeneous_pages_after, stats.homogeneous_pages_after);
  EXPECT_EQ(Fingerprint(f.store.get()), fp_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VacuumStoreTest, ::testing::Range(1, 5));

TEST(VacuumStoreTest, AllDeniedRegionBecomesSkippablePostVacuum) {
  // A crafted document: root holds 600 <a><b/><c/></a> children, so the
  // child walk under root crosses every page. A contiguous all-subjects-
  // denied stripe in the middle turns, post-vacuum, into change-bit-clear
  // wholly-dead pages that the batch cursor must skip for the whole batch.
  std::string xml = "<root>";
  for (int i = 0; i < 600; ++i) xml += "<a><b/><c/></a>";
  xml += "</root>";
  Document doc;
  ASSERT_TRUE(ParseXml(xml, &doc).ok());
  const NodeId n = static_cast<NodeId>(doc.NumNodes());

  DenseAccessMap map(n, kSubjects);
  Rng rng(404);
  for (SubjectId s = 0; s < kSubjects; ++s) {
    map.SetSubtree(doc, s, 0, true);
    // Per-subject variation outside the stripe keeps the batch genuinely
    // mixed (distinct columns).
    for (int i = 0; i < 6; ++i) {
      map.SetSubtree(doc, s, 1 + static_cast<NodeId>(rng.Uniform(n - 1)),
                     rng.Bernoulli(0.5));
    }
  }
  // The stripe: nodes [n/3, 2n/3) denied to every subject.
  for (SubjectId s = 0; s < kSubjects; ++s) {
    for (NodeId v = n / 3; v < 2 * n / 3; ++v) map.Set(s, v, false);
  }

  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::Build(doc, DolLabeling::Build(map), &file,
                                 StoreOptions(), &store)
                  .ok());

  PatternTree q;
  ASSERT_TRUE(ParseXPath("/root/a/b", &q).ok());
  std::vector<SubjectId> subjects;
  for (SubjectId s = 0; s < kSubjects; ++s) subjects.push_back(s);
  EvalOptions opts;
  opts.semantics = AccessSemantics::kBinding;

  BatchEvaluator batch_eval(store.get());
  auto pre = batch_eval.Evaluate(q, subjects, opts);
  ASSERT_TRUE(pre.ok()) << pre.status();

  SecureStore::VacuumOptions vopts;
  SecureStore::VacuumStats stats;
  ASSERT_TRUE(store->Vacuum(vopts, &stats).ok());
  EXPECT_GE(stats.homogeneous_pages_after, stats.homogeneous_pages_before);

  auto post = batch_eval.Evaluate(q, subjects, opts);
  ASSERT_TRUE(post.ok()) << post.status();
  for (size_t i = 0; i < subjects.size(); ++i) {
    EXPECT_EQ(post->ResultFor(i).answers, pre->ResultFor(i).answers);
  }
  // The point of the exercise: batch page skipping fires after clustering,
  // and never regresses relative to the fragmented layout.
  EXPECT_GT(post->exec.pages_skipped, 0u);
  EXPECT_GE(post->exec.pages_skipped, pre->exec.pages_skipped);
  EXPECT_EQ(post->exec.access_only_fetches, 0u);
}

TEST(VacuumStoreTest, CrashAfterUncheckpointedVacuumReplaysIt) {
  WalFixture f;
  BuildWalFixture(/*seed=*/21, 1600, &f);
  std::vector<PatternTree> queries;
  for (int i = 0; i < 2; ++i) {
    QueryGenOptions qopts;
    qopts.seed = 2100 + static_cast<uint64_t>(i);
    qopts.max_nodes = 3;
    queries.push_back(GenerateTwigQuery(f.doc, qopts));
  }

  // A couple of logged updates before the vacuum, one after — the replay
  // has to reproduce the planner's layout in sequence with its neighbors.
  ASSERT_TRUE(f.store->SetSubtreeAccess(1, 0, false).ok());
  ASSERT_TRUE(f.store->SetRangeAccess(5, 200, 1, false).ok());
  SecureStore::VacuumOptions vopts;
  vopts.min_run_records = 8;
  vopts.checkpoint_after = false;  // leave the vacuum record in the log
  SecureStore::VacuumStats stats;
  ASSERT_TRUE(f.store->Vacuum(vopts, &stats).ok());
  ASSERT_TRUE(f.store->SetSubtreeAccess(3, 2, true).ok());
  ASSERT_GE(f.store->wal()->num_records(), 4u);

  const std::string fp = Fingerprint(f.store.get());
  const auto answers = AnswerSet(f.store.get(), queries);
  const size_t pages = f.store->nok()->page_infos().size();
  const size_t homogeneous = HomogeneousPages(f.store.get());

  MemPagedFile data_img, wal_img;
  SnapshotFile(&f.data, &data_img);
  SnapshotFile(&f.wal, &wal_img);
  std::unique_ptr<SecureStore> recovered;
  SecureStore::RecoveryStats rs;
  ASSERT_TRUE(SecureStore::OpenWithWal(&data_img, &wal_img, StoreOptions(),
                                       &recovered, &rs)
                  .ok());
  EXPECT_EQ(rs.records_replayed, rs.records_in_log);
  EXPECT_EQ(Fingerprint(recovered.get()), fp);
  EXPECT_EQ(AnswerSet(recovered.get(), queries), answers);
  // The replayed planner reproduces the physical layout, not just the
  // logical state.
  EXPECT_EQ(recovered->nok()->page_infos().size(), pages);
  EXPECT_EQ(HomogeneousPages(recovered.get()), homogeneous);
  EXPECT_EQ(recovered->epochs()->active_pins(), 0u);
}

TEST(VacuumStoreTest, DefaultVacuumCheckpointsAndTruncatesLog) {
  WalFixture f;
  BuildWalFixture(/*seed=*/23, 1200, &f);
  ASSERT_TRUE(f.store->SetSubtreeAccess(1, 0, false).ok());
  ASSERT_GE(f.store->wal()->num_records(), 1u);

  SecureStore::VacuumOptions vopts;  // checkpoint_after = true
  ASSERT_TRUE(f.store->Vacuum(vopts, nullptr).ok());
  EXPECT_EQ(f.store->wal()->num_records(), 0u);
  const std::string fp = Fingerprint(f.store.get());

  // Recovery from the checkpoint replays nothing and lands on the same
  // state.
  MemPagedFile data_img, wal_img;
  SnapshotFile(&f.data, &data_img);
  SnapshotFile(&f.wal, &wal_img);
  std::unique_ptr<SecureStore> recovered;
  SecureStore::RecoveryStats rs;
  ASSERT_TRUE(SecureStore::OpenWithWal(&data_img, &wal_img, StoreOptions(),
                                       &recovered, &rs)
                  .ok());
  EXPECT_EQ(rs.records_replayed, 0u);
  EXPECT_EQ(Fingerprint(recovered.get()), fp);
}

TEST(VacuumStoreTest, VacuumKeepsWorkingAfterFurtherUpdates) {
  // Updates after a vacuum land on the re-cut layout; a second vacuum
  // re-clusters what they fragmented.
  WalFixture f;
  BuildWalFixture(/*seed=*/29, 1400, &f);
  SecureStore::VacuumOptions vopts;
  ASSERT_TRUE(f.store->Vacuum(vopts, nullptr).ok());
  Rng rng(77);
  const NodeId n = f.store->num_nodes();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(f.store
                    ->SetSubtreeAccess(
                        1 + static_cast<NodeId>(rng.Uniform(n - 1)),
                        static_cast<SubjectId>(rng.Uniform(kSubjects)),
                        rng.Bernoulli(0.5))
                    .ok());
  }
  const std::string fp = Fingerprint(f.store.get());
  SecureStore::VacuumStats stats;
  ASSERT_TRUE(f.store->Vacuum(vopts, &stats).ok());
  EXPECT_EQ(Fingerprint(f.store.get()), fp);
  EXPECT_GE(stats.homogeneous_pages_after, stats.homogeneous_pages_before);
}

}  // namespace
}  // namespace secxml
