// Online-update differential suite (ctest -L update): after *every* update
// in a scripted mixed sequence, the incrementally maintained state must be
// indistinguishable from a from-scratch rebuild —
//
//  * each subject's cached SubjectView (patched at commit from the update's
//    page delta, DESIGN.md §11) is byte-identical, accessor by accessor, to
//    SubjectView::Compile run fresh against the committed snapshot;
//  * GroupSubjects (epoch-stamped column cache, patched by appending the
//    new codebook entries) partitions exactly like GroupSubjectsByColumn
//    over the current codebook;
//  * query answers out of the warm (patched) caches equal the answers after
//    DropVisibilityCaches forces cold recompilation, under both access
//    semantics and through both the serial and the batch evaluator.
//
// Plus the epoch-boundary regressions for the stale-view hazard: a view
// compiled for one epoch is never served at another, and a pinned reader
// straddling a commit keeps resolving against its pinned snapshot.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "core/subject_view.h"
#include "query/batch_evaluator.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

std::unique_ptr<Fixture> MakeFixture(uint64_t seed, uint32_t nodes,
                                     size_t subjects) {
  auto f = std::make_unique<Fixture>();
  XMarkOptions xopts;
  xopts.seed = seed + 101;
  xopts.target_nodes = nodes;
  EXPECT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  NodeId n = static_cast<NodeId>(f->doc.NumNodes());
  Rng rng(seed * 31 + 7);
  IntervalAccessMap map(n, subjects);
  for (SubjectId s = 0; s < subjects; ++s) {
    std::vector<AclSeed> seeds = {{0, rng.Bernoulli(0.5)}};
    for (int i = 0; i < 25; ++i) {
      seeds.push_back(
          {static_cast<NodeId>(rng.Uniform(n)), rng.Bernoulli(0.5)});
    }
    map.SetSubjectIntervals(s, PropagateMostSpecificOverride(f->doc, seeds));
  }
  DolLabeling labeling =
      DolLabeling::BuildFromEvents(n, map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;  // many pages: deltas hit page boundaries
  Status st =
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store);
  EXPECT_TRUE(st.ok()) << st;
  return f;
}

// Accessor-by-accessor equality of a served view against a fresh compile:
// the incremental patch must reproduce the recompile exactly, not just
// "conservatively" (a lost check-free bit would hide a perf regression, a
// wrong verdict an answer bug).
void ExpectViewIdentical(const SubjectView& got, const SubjectView& want,
                         SubjectId subject, const char* when) {
  ASSERT_EQ(got.subject(), subject) << when;
  ASSERT_EQ(got.num_codes(), want.num_codes()) << when << " s" << subject;
  ASSERT_EQ(got.num_pages(), want.num_pages()) << when << " s" << subject;
  for (size_t c = 0; c < want.num_codes(); ++c) {
    ASSERT_EQ(got.CodeAccessible(static_cast<uint32_t>(c)),
              want.CodeAccessible(static_cast<uint32_t>(c)))
        << when << " subject " << subject << " code " << c;
  }
  for (size_t p = 0; p < want.num_pages(); ++p) {
    ASSERT_EQ(got.Verdict(p), want.Verdict(p))
        << when << " subject " << subject << " page " << p;
    ASSERT_EQ(got.NextLivePage(p), want.NextLivePage(p))
        << when << " subject " << subject << " page " << p;
    ASSERT_EQ(got.PageCheckFree(p), want.PageCheckFree(p))
        << when << " subject " << subject << " page " << p;
  }
}

// Every differential the suite owes after one committed update.
void CheckAfterUpdate(Fixture* f, size_t num_subjects,
                      const std::vector<PatternTree>& queries,
                      const char* when) {
  // 1. Served views (cached+patched or lazily compiled) vs fresh compiles.
  for (SubjectId s = 0; s < num_subjects; ++s) {
    auto served = f->store->View(s);
    ASSERT_TRUE(served.ok()) << when << ": " << served.status();
    SubjectView fresh =
        SubjectView::Compile(f->store->codebook(),
                             f->store->nok()->page_infos(), s,
                             f->store->nok());
    ExpectViewIdentical(**served, fresh, s, when);
  }

  // 2. Cached column grouping vs a direct recomputation.
  std::vector<SubjectId> all;
  for (SubjectId s = 0; s < num_subjects; ++s) all.push_back(s);
  std::vector<SubjectClass> got = f->store->GroupSubjects(all);
  std::vector<SubjectClass> want =
      GroupSubjectsByColumn(f->store->codebook(), all);
  ASSERT_EQ(got.size(), want.size()) << when;
  for (size_t k = 0; k < want.size(); ++k) {
    EXPECT_EQ(got[k].members, want[k].members) << when << " class " << k;
  }

  // 3. Answers: warm (patched caches) vs cold (recompiled), serial vs
  //    batch, both semantics.
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      std::vector<std::vector<NodeId>> warm(num_subjects);
      QueryEvaluator eval(f->store.get());
      for (SubjectId s = 0; s < num_subjects; ++s) {
        EvalOptions opts;
        opts.semantics = sem;
        opts.subject = s;
        auto r = eval.Evaluate(queries[qi], opts);
        ASSERT_TRUE(r.ok()) << when << ": " << r.status();
        EXPECT_EQ(r->exec.access_only_fetches, 0u) << when;
        warm[s] = r->answers;
      }

      EvalOptions bopts;
      bopts.semantics = sem;
      BatchEvaluator batch(f->store.get());
      auto br = batch.Evaluate(queries[qi], all, bopts);
      ASSERT_TRUE(br.ok()) << when << ": " << br.status();
      for (SubjectId s = 0; s < num_subjects; ++s) {
        EXPECT_EQ(br->ResultFor(s).answers, warm[s])
            << when << " query " << qi << " subject " << s << " semantics "
            << static_cast<int>(sem) << " (batch vs serial)";
      }

      f->store->DropVisibilityCaches();
      for (SubjectId s = 0; s < num_subjects; ++s) {
        EvalOptions opts;
        opts.semantics = sem;
        opts.subject = s;
        auto r = eval.Evaluate(queries[qi], opts);
        ASSERT_TRUE(r.ok()) << when << ": " << r.status();
        EXPECT_EQ(r->answers, warm[s])
            << when << " query " << qi << " subject " << s << " semantics "
            << static_cast<int>(sem) << " (cold recompile vs patched)";
      }
    }
  }
}

NodeId PickSubtree(const Document& doc, Rng* rng, NodeId min_size,
                   NodeId max_size) {
  for (int tries = 0; tries < 200; ++tries) {
    NodeId n = static_cast<NodeId>(
        rng->Uniform(static_cast<uint64_t>(doc.NumNodes() - 1)) + 1);
    if (doc.SubtreeSize(n) >= min_size && doc.SubtreeSize(n) <= max_size) {
      return n;
    }
  }
  return 1;
}

class UpdateDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdateDifferentialTest, EveryUpdatePatchesExactly) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  constexpr size_t kBaseSubjects = 5;
  auto f = MakeFixture(seed, 2200, kBaseSubjects);
  size_t num_subjects = kBaseSubjects;
  Rng rng(seed * 131 + 17);

  std::vector<PatternTree> queries;
  for (int i = 0; i < 3; ++i) {
    QueryGenOptions qopts;
    qopts.seed = seed * 900 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i;
    queries.push_back(GenerateTwigQuery(f->doc, qopts));
  }

  // Warm every cache so the ACL updates below exercise the *patch* path
  // (a dropped cache would trivially pass the differential).
  CheckAfterUpdate(f.get(), num_subjects, queries, "baseline");
  for (SubjectId s = 0; s < num_subjects; ++s) {
    ASSERT_TRUE(f->store->View(s).ok());
    ASSERT_TRUE(f->store->HiddenSubtreeIntervals(s).ok());
  }
  (void)f->store->GroupSubjects({0, 1, 2, 3, 4});

  const NodeId n = f->store->num_nodes();

  // 1..3: subtree ACL toggles for assorted subjects.
  for (int i = 0; i < 3; ++i) {
    NodeId root = PickSubtree(f->doc, &rng, 30, 400);
    SubjectId s = static_cast<SubjectId>(rng.Uniform(num_subjects));
    bool grant = rng.Bernoulli(0.5);
    ASSERT_TRUE(f->store->SetSubtreeAccess(root, s, grant).ok());
    CheckAfterUpdate(f.get(), num_subjects, queries, "subtree-acl");
  }

  // 4: a single-node flip (the smallest possible delta).
  ASSERT_TRUE(
      f->store->SetNodeAccess(static_cast<NodeId>(rng.Uniform(n)), 1,
                              rng.Bernoulli(0.5)).ok());
  CheckAfterUpdate(f.get(), num_subjects, queries, "node-acl");

  // 5: an explicit range crossing several page boundaries.
  {
    NodeId begin = static_cast<NodeId>(rng.Uniform(n / 2));
    NodeId end = begin + 150 < n ? begin + 150 : n;
    ASSERT_TRUE(f->store->SetRangeAccess(begin, end, 2, true).ok());
    CheckAfterUpdate(f.get(), num_subjects, queries, "range-acl");
  }

  // 6..7: subject additions (codebook-append; views/columns restamped).
  {
    auto added = f->store->AddSubject(rng.Bernoulli(0.5));
    ASSERT_TRUE(added.ok());
    ASSERT_EQ(*added, num_subjects);
    ++num_subjects;
    CheckAfterUpdate(f.get(), num_subjects, queries, "add-subject");
    auto cloned = f->store->AddSubjectLike(0);
    ASSERT_TRUE(cloned.ok());
    ++num_subjects;
    CheckAfterUpdate(f.get(), num_subjects, queries, "add-subject-like");
  }

  // 8: an ACL update for a *new* subject (patched views must extend their
  // code tables for entries the update interned).
  ASSERT_TRUE(f->store
                  ->SetSubtreeAccess(PickSubtree(f->doc, &rng, 20, 200),
                                     static_cast<SubjectId>(num_subjects - 1),
                                     true)
                  .ok());
  CheckAfterUpdate(f.get(), num_subjects, queries, "new-subject-acl");

  // 9: remove the last subject (renumbering: caches drop and recompile).
  ASSERT_TRUE(
      f->store->RemoveSubject(static_cast<SubjectId>(num_subjects - 1)).ok());
  --num_subjects;
  CheckAfterUpdate(f.get(), num_subjects, queries, "remove-subject");

  // 10: structural deletion.
  ASSERT_TRUE(
      f->store->DeleteSubtree(PickSubtree(f->doc, &rng, 10, 80)).ok());
  CheckAfterUpdate(f.get(), num_subjects, queries, "delete-subtree");

  // 11: structural insertion of a labeled fragment.
  {
    Document frag;
    ASSERT_TRUE(
        ParseXml("<patchnote><line>a</line><line>b</line></patchnote>", &frag)
            .ok());
    DenseAccessMap fmap(static_cast<NodeId>(frag.NumNodes()), num_subjects);
    for (SubjectId s = 0; s < num_subjects; ++s) {
      fmap.SetSubtree(frag, s, 0, s % 2 == 0);
    }
    auto pos = f->store->InsertSubtree(0, kInvalidNode, frag,
                                       DolLabeling::Build(fmap));
    ASSERT_TRUE(pos.ok()) << pos.status();
    CheckAfterUpdate(f.get(), num_subjects, queries, "insert-subtree");
  }

  // 12: codebook compaction (renumbering: caches drop and recompile).
  ASSERT_TRUE(f->store->CompactCodebook().ok());
  CheckAfterUpdate(f.get(), num_subjects, queries, "compact");

  // The ACL updates above must have gone through the incremental path at
  // least once (warmed caches + kPatch effect), or this suite tested
  // nothing but recompilation.
  SecureStore::UpdateStats us = f->store->update_stats();
  EXPECT_GT(us.views_patched, 0u);
  EXPECT_GT(us.columns_patched, 0u);
  EXPECT_GT(us.views_dropped, 0u);  // remove-subject + compact paths
  EXPECT_EQ(us.epochs_advanced, us.updates_applied);
  EXPECT_EQ(f->store->epochs()->active_pins(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateDifferentialTest,
                         ::testing::Range(0, 8));  // 8 seeds

TEST(UpdateEpochTest, ViewIsNeverServedAcrossAnEpochBoundary) {
  auto f = MakeFixture(77, 1500, 3);
  auto v1 = f->store->View(0);
  ASSERT_TRUE(v1.ok());
  // Same epoch: the cache may (and should) serve the same object.
  auto v1b = f->store->View(0);
  ASSERT_TRUE(v1b.ok());
  EXPECT_EQ(v1->get(), v1b->get());

  NodeId root = 1;
  while (f->doc.SubtreeSize(root) < 50) ++root;
  ASSERT_TRUE(f->store->SetSubtreeAccess(root, 0, false).ok());

  // New epoch: a fresh (patched) object, never the pre-update one — even
  // though the caller still holds the old view alive via shared_ptr.
  auto v2 = f->store->View(0);
  ASSERT_TRUE(v2.ok());
  EXPECT_NE(v1->get(), v2->get());
  SubjectView fresh = SubjectView::Compile(f->store->codebook(),
                                           f->store->nok()->page_infos(), 0,
                                           f->store->nok());
  ExpectViewIdentical(**v2, fresh, 0, "post-update");
}

TEST(UpdateEpochTest, PinnedReaderKeepsItsSnapshotAcrossACommit) {
  auto f = MakeFixture(78, 1500, 3);
  NodeId root = 1;
  while (f->doc.SubtreeSize(root) < 80) ++root;
  const NodeId probe = root + 1;  // inside the toggled subtree
  auto before = f->store->Accessible(0, probe);
  ASSERT_TRUE(before.ok());
  auto view_before = f->store->View(0);
  ASSERT_TRUE(view_before.ok());

  {
    SecureStore::SnapshotPin pin(f->store.get());
    EpochManager::Epoch pinned = pin.epoch();

    // A commit lands while this reader is pinned (single-threaded here;
    // the cross-thread version is the concurrency suite's job).
    ASSERT_TRUE(f->store->SetSubtreeAccess(root, 0, !*before).ok());
    EXPECT_GT(f->store->epochs()->current(), pinned);

    // Every read through the pin still resolves against the old snapshot:
    // accessibility, the codebook, and a view compiled under the pin.
    auto pinned_access = f->store->Accessible(0, probe);
    ASSERT_TRUE(pinned_access.ok());
    EXPECT_EQ(*pinned_access, *before);
    auto pinned_view = f->store->View(0);
    ASSERT_TRUE(pinned_view.ok());
    ExpectViewIdentical(**pinned_view, **view_before, 0, "pinned");
  }

  // Unpinned, the same reads see the committed update.
  auto after = f->store->Accessible(0, probe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, !*before);
  auto view_after = f->store->View(0);
  ASSERT_TRUE(view_after.ok());
  EXPECT_NE(view_after->get(), view_before->get());
  EXPECT_EQ(f->store->epochs()->active_pins(), 0u);
}

}  // namespace
}  // namespace secxml
