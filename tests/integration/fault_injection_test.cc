// Randomized fault-injection differential suite for the secure query stack
// (run under ASan/TSan via -L fault). The full stack — MemPagedFile under a
// FaultInjectingPagedFile, optionally under a RetryingPagedFile, under the
// sharded BufferPool, NokStore, SecureStore, and a 4-worker QueryDriver —
// is driven with seeded chaos and held to two contracts:
//
//  * Transient faults + retry are invisible: every query succeeds and the
//    answers are identical to the fault-free run of the same batch.
//  * Persistent faults degrade, never corrupt: each query either succeeds
//    with the fault-free answer or fails with a clean Status; no pins leak,
//    no worker deadlocks, and once the faults clear a rerun over the same
//    (possibly partially warmed) pool matches the baseline exactly — a
//    failed read must never install a poisoned frame.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/query_driver.h"
#include "storage/fault_file.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kNumSubjects = 4;
constexpr size_t kNumThreads = 4;

struct ChaosFixture {
  Document doc;
  MemPagedFile base;
  std::unique_ptr<FaultInjectingPagedFile> fault;
  std::unique_ptr<RetryingPagedFile> retry;  // null when built without retry
  std::unique_ptr<SecureStore> store;
};

// Builds the store fault-free through the final decorator stack (the fault
// layer starts disabled), so chaos only ever hits the query phase.
void BuildChaosFixture(uint64_t seed, bool with_retry, ChaosFixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 500;
  xopts.target_nodes = 2500;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = seed + 900;
  aopts.accessibility_ratio = 0.6;
  IntervalAccessMap map = GenerateSyntheticAclMap(f->doc, kNumSubjects, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());

  f->fault = std::make_unique<FaultInjectingPagedFile>(&f->base);
  f->fault->set_enabled(false);
  PagedFile* top = f->fault.get();
  if (with_retry) {
    RetryOptions ropts;
    ropts.max_attempts = 10;  // Bernoulli(0.1)^10: effectively never gives up
    f->retry = std::make_unique<RetryingPagedFile>(f->fault.get(), ropts);
    top = f->retry.get();
  }
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  // Tiny sharded pool: the batch constantly evicts and re-reads, so faults
  // hit live query I/O, not a warm cache.
  sopts.buffer_pool_pages = 16;
  sopts.buffer_pool_shards = 4;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, top, sopts, &f->store).ok());
}

std::vector<QueryJob> MakeBatch(const Document& doc, uint64_t seed) {
  std::vector<QueryJob> jobs;
  for (int i = 0; i < 48; ++i) {
    QueryJob job;
    job.subject = static_cast<SubjectId>(i % kNumSubjects);
    QueryGenOptions qopts;
    qopts.seed = seed * 5000 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i % 5;
    job.pattern = GenerateTwigQuery(doc, qopts);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

// Runs the batch with faults disabled and caches cold; returns the
// per-query answers (the differential baseline).
std::vector<std::vector<NodeId>> RunClean(ChaosFixture* f,
                                          const std::vector<QueryJob>& jobs,
                                          AccessSemantics sem) {
  f->fault->set_enabled(false);
  f->store->DropVisibilityCaches();
  EXPECT_TRUE(f->store->nok()->buffer_pool()->EvictAll().ok());
  QueryDriverOptions dopts;
  dopts.num_threads = kNumThreads;
  dopts.semantics = sem;
  QueryDriver driver(f->store.get(), dopts);
  BatchResult batch = driver.Run(jobs);
  EXPECT_EQ(batch.stats.failed, 0u);
  EXPECT_TRUE(batch.stats.first_error.ok());
  std::vector<std::vector<NodeId>> answers;
  answers.reserve(batch.outcomes.size());
  for (const QueryOutcome& out : batch.outcomes) {
    EXPECT_TRUE(out.status.ok()) << out.status;
    answers.push_back(out.result.answers);
  }
  return answers;
}

class FaultInjectionTest : public ::testing::TestWithParam<int> {};

TEST_P(FaultInjectionTest, TransientFaultsWithRetryAreInvisible) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ChaosFixture f;
  BuildChaosFixture(seed, /*with_retry=*/true, &f);
  std::vector<QueryJob> jobs = MakeBatch(f.doc, seed);

  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    std::vector<std::vector<NodeId>> want = RunClean(&f, jobs, sem);

    f.fault->set_enabled(false);
    f.store->DropVisibilityCaches();
    ASSERT_TRUE(f.store->nok()->buffer_pool()->EvictAll().ok());
    FaultOptions chaos;
    chaos.seed = seed * 977 + static_cast<uint64_t>(sem) + 1;
    chaos.read_fault_prob = 0.1;  // transient: every retry redraws
    f.fault->SetOptions(chaos);
    f.fault->set_enabled(true);

    QueryDriverOptions dopts;
    dopts.num_threads = kNumThreads;
    dopts.semantics = sem;
    QueryDriver driver(f.store.get(), dopts);
    BatchResult batch = driver.Run(jobs);

    EXPECT_GT(f.fault->stats().injected_reads, 0u) << "chaos never fired";
    EXPECT_GT(f.retry->stats().recovered, 0u);
    EXPECT_EQ(batch.stats.failed, 0u);
    EXPECT_TRUE(batch.stats.first_error.ok());
    ASSERT_EQ(batch.outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(batch.outcomes[i].status.ok()) << batch.outcomes[i].status;
      EXPECT_EQ(batch.outcomes[i].result.answers, want[i])
          << "seed " << seed << " query " << i << " semantics "
          << static_cast<int>(sem) << ": " << jobs[i].pattern.ToString();
    }
    EXPECT_EQ(f.store->nok()->buffer_pool()->num_pinned(), 0u);
  }
}

TEST_P(FaultInjectionTest, PersistentFaultsFailCleanlyWithoutPoisoning) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  ChaosFixture f;
  BuildChaosFixture(seed, /*with_retry=*/false, &f);
  std::vector<QueryJob> jobs = MakeBatch(f.doc, seed + 1);

  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    std::vector<std::vector<NodeId>> want = RunClean(&f, jobs, sem);

    f.fault->set_enabled(false);
    f.store->DropVisibilityCaches();
    ASSERT_TRUE(f.store->nok()->buffer_pool()->EvictAll().ok());
    FaultOptions chaos;
    chaos.seed = seed * 1301 + static_cast<uint64_t>(sem) + 1;
    chaos.read_fault_prob = 0.05;
    chaos.persistent = true;  // bad sectors: no retry could cure these
    f.fault->SetOptions(chaos);
    f.fault->set_enabled(true);

    QueryDriverOptions dopts;
    dopts.num_threads = kNumThreads;
    dopts.semantics = sem;
    QueryDriver driver(f.store.get(), dopts);
    BatchResult batch = driver.Run(jobs);

    EXPECT_GT(f.fault->stats().injected_reads, 0u) << "chaos never fired";
    ASSERT_EQ(batch.outcomes.size(), jobs.size());
    size_t failed = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
      const QueryOutcome& out = batch.outcomes[i];
      if (out.status.ok()) {
        // A query that dodged every bad page must still be exactly right.
        EXPECT_EQ(out.result.answers, want[i])
            << "seed " << seed << " query " << i << " semantics "
            << static_cast<int>(sem);
      } else {
        ++failed;
        EXPECT_EQ(out.status.code(), StatusCode::kIOError) << out.status;
      }
    }
    EXPECT_EQ(batch.stats.failed, failed);
    EXPECT_EQ(batch.stats.first_error.ok(), failed == 0);
    // No worker leaked a pin on any error path.
    EXPECT_EQ(f.store->nok()->buffer_pool()->num_pinned(), 0u);

    // The device heals: with the faults cleared, the same batch over the
    // same pool must match the baseline without an explicit cache purge —
    // failed reads never installed a frame, so nothing stale can surface.
    f.fault->set_enabled(false);
    f.fault->ClearPageFaults();
    f.store->DropVisibilityCaches();
    BatchResult healed = driver.Run(jobs);
    EXPECT_EQ(healed.stats.failed, 0u);
    for (size_t i = 0; i < jobs.size(); ++i) {
      ASSERT_TRUE(healed.outcomes[i].status.ok()) << healed.outcomes[i].status;
      EXPECT_EQ(healed.outcomes[i].result.answers, want[i])
          << "seed " << seed << " query " << i << " semantics "
          << static_cast<int>(sem) << " (post-heal)";
    }
  }
}

TEST(FaultInjectionTest, PersistFailsCleanlyAndRecovers) {
  ChaosFixture f;
  BuildChaosFixture(4242, /*with_retry=*/false, &f);
  std::vector<QueryJob> jobs = MakeBatch(f.doc, 4242);
  std::vector<std::vector<NodeId>> want =
      RunClean(&f, jobs, AccessSemantics::kBinding);

  // A dying sync mid-Persist surfaces as a clean error...
  f.fault->set_enabled(true);
  f.fault->FailNext(FaultOp::kSync, 1);
  Status st = f.store->Persist();
  EXPECT_EQ(st.code(), StatusCode::kIOError) << st;
  // ...and the store remains fully usable: queries still match, and a
  // second Persist attempt goes through.
  f.fault->set_enabled(false);
  BatchResult batch = QueryDriver(f.store.get(), {}).Run(jobs);
  EXPECT_EQ(batch.stats.failed, 0u);
  for (size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(batch.outcomes[i].result.answers, want[i]) << "query " << i;
  }
  EXPECT_TRUE(f.store->Persist().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultInjectionTest,
                         ::testing::Range(1, 13));  // 12 seeds

}  // namespace
}  // namespace secxml
