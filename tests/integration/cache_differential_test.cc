// Cross-request cache differential suite (ctest -L cache): with a
// ResultCache + PlanCache attached, every served answer — first probe,
// guaranteed-hit second probe, driver batch, coordinator scatter — must be
// byte-identical to a live uncached evaluation of the same (subject, query,
// snapshot), across an update storm touching every invalidation class (ACL
// range/subtree patches, subject additions, structural insert/delete,
// codebook compaction, vacuum). Zero stale serves, ever; and the cache must
// actually serve hits along the way or the suite tested nothing. The
// threaded storm test runs the same machinery under concurrent updates for
// the TSan leg (ctest -L "concurrency|cache").

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "cache/result_cache.h"
#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "query/batch_evaluator.h"
#include "query/evaluator.h"
#include "query/query_cache.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "serve/shard_coordinator.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

#include "../serve/shard_test_util.h"

namespace secxml {
namespace {

// The CI differential leg re-runs this whole suite with
// SECXML_DISABLE_RESULT_CACHE=1: answers must stay byte-identical (those
// checks are unconditional below), but hit-count assertions only make sense
// when the cache is actually serving.
const bool kCacheLive = !ResultCacheDisabled();

struct Fixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildFixture(uint64_t seed, uint32_t nodes, size_t subjects,
                  size_t profiles, Fixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 500;
  xopts.target_nodes = nodes;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  IntervalAccessMap map(static_cast<NodeId>(f->doc.NumNodes()), subjects);
  for (SubjectId s = 0; s < subjects; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = seed * 100 + s % profiles;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f->doc, aopts));
  }
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, labeling, &f->file, sopts, &f->store).ok());
}

/// Shared caches wired to one store's commit stream.
struct CacheRig {
  cache::ResultCache results;
  QueryPlanCache plans;
  QueryCaches caches;
  explicit CacheRig(SecureStore* store) {
    caches.results = &results;
    caches.plans = &plans;
    AttachResultCacheInvalidation(store, &results);
  }
};

std::vector<PatternTree> MakeQueries(const Document& doc, uint64_t seed) {
  std::vector<PatternTree> queries;
  for (int i = 0; i < 2; ++i) {
    QueryGenOptions qopts;
    qopts.seed = seed * 7000 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i;
    queries.push_back(GenerateTwigQuery(doc, qopts));
  }
  PatternTree fixed;
  EXPECT_TRUE(ParseXPath("//item/name", &fixed).ok());
  queries.push_back(fixed);
  return queries;
}

NodeId PickSubtree(const Document& doc, Rng* rng, NodeId min_size,
                   NodeId max_size) {
  for (int tries = 0; tries < 200; ++tries) {
    NodeId n = static_cast<NodeId>(
        rng->Uniform(static_cast<uint64_t>(doc.NumNodes() - 1)) + 1);
    if (doc.SubtreeSize(n) >= min_size && doc.SubtreeSize(n) <= max_size) {
      return n;
    }
  }
  return 1;
}

/// The differential the suite owes after every committed update: for each
/// semantics, query, and subject — a cached probe, a second probe (which
/// must be a hit: nothing invalidated it in between), and an uncached live
/// evaluation all agree byte for byte.
void CheckRound(Fixture* f, CacheRig* rig, size_t num_subjects,
                const std::vector<PatternTree>& queries, const char* when) {
  QueryEvaluator cached_eval(f->store.get());
  QueryEvaluator live_eval(f->store.get());
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      for (SubjectId s = 0; s < num_subjects; ++s) {
        EvalOptions opts;
        opts.semantics = sem;
        opts.subject = s;
        auto cached = EvaluateWithCaches(f->store.get(), &cached_eval,
                                         queries[qi], opts, rig->caches);
        ASSERT_TRUE(cached.ok()) << when << ": " << cached.status();
        auto served = EvaluateWithCaches(f->store.get(), &cached_eval,
                                         queries[qi], opts, rig->caches);
        ASSERT_TRUE(served.ok()) << when << ": " << served.status();
        auto live = live_eval.Evaluate(queries[qi], opts);
        ASSERT_TRUE(live.ok()) << when << ": " << live.status();

        EXPECT_EQ(cached->answers, live->answers)
            << when << " query " << qi << " subject " << s << " semantics "
            << static_cast<int>(sem) << " (first probe vs live)";
        EXPECT_EQ(served->answers, live->answers)
            << when << " query " << qi << " subject " << s << " semantics "
            << static_cast<int>(sem) << " (served hit vs live)";
        EXPECT_EQ(served->fragment_matches, live->fragment_matches) << when;
        // Single-threaded round: nothing raced the publish, so the second
        // probe is a genuine hit — the differential above really did check
        // a cache-served answer, not two live evaluations.
        if (kCacheLive) {
          EXPECT_EQ(served->exec.result_cache_hits, 1u) << when;
        }
        EXPECT_EQ(served->exec.access_only_fetches, 0u) << when;
      }
    }
  }
}

class CacheDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(CacheDifferentialTest, UpdateStormNeverServesStale) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  constexpr size_t kBaseSubjects = 4, kProfiles = 3;
  Fixture f;
  BuildFixture(seed, 1400, kBaseSubjects, kProfiles, &f);
  size_t num_subjects = kBaseSubjects;
  CacheRig rig(f.store.get());
  Rng rng(seed * 97 + 3);
  std::vector<PatternTree> queries = MakeQueries(f.doc, seed);
  const NodeId n = f.store->num_nodes();

  CheckRound(&f, &rig, num_subjects, queries, "baseline");

  // 1..2: ACL range patches (range-scoped invalidation).
  for (int i = 0; i < 2; ++i) {
    NodeId begin = static_cast<NodeId>(rng.Uniform(n - 1));
    NodeId end = std::min<NodeId>(n, begin + 1 +
                                         static_cast<NodeId>(rng.Uniform(96)));
    SubjectId s = static_cast<SubjectId>(rng.Uniform(num_subjects));
    ASSERT_TRUE(f.store->SetRangeAccess(begin, end, s, i % 2 == 0).ok());
    CheckRound(&f, &rig, num_subjects, queries, "range-acl");
  }

  // 3: a subtree toggle (the paper's natural policy delta).
  ASSERT_TRUE(f.store
                  ->SetSubtreeAccess(PickSubtree(f.doc, &rng, 20, 300),
                                     static_cast<SubjectId>(
                                         rng.Uniform(num_subjects)),
                                     rng.Bernoulli(0.5))
                  .ok());
  CheckRound(&f, &rig, num_subjects, queries, "subtree-acl");

  // 4: subject addition (no-op for cached answers of existing classes).
  {
    auto added = f.store->AddSubjectLike(0);
    ASSERT_TRUE(added.ok());
    ++num_subjects;
    CheckRound(&f, &rig, num_subjects, queries, "add-subject-like");
  }

  // 5: structural deletion (full flush).
  ASSERT_TRUE(f.store->DeleteSubtree(PickSubtree(f.doc, &rng, 5, 60)).ok());
  CheckRound(&f, &rig, num_subjects, queries, "delete-subtree");

  // 6: structural insertion of a labeled fragment (full flush).
  {
    Document frag;
    ASSERT_TRUE(
        ParseXml("<cachenote><line>a</line><line>b</line></cachenote>", &frag)
            .ok());
    DenseAccessMap fmap(static_cast<NodeId>(frag.NumNodes()), num_subjects);
    for (SubjectId s = 0; s < num_subjects; ++s) {
      fmap.SetSubtree(frag, s, 0, s % 2 == 0);
    }
    auto pos = f.store->InsertSubtree(0, kInvalidNode, frag,
                                      DolLabeling::Build(fmap));
    ASSERT_TRUE(pos.ok()) << pos.status();
    CheckRound(&f, &rig, num_subjects, queries, "insert-subtree");
  }

  // 7: codebook compaction (renumbering — fingerprints change, old keys go
  // unreachable instead of aliasing).
  ASSERT_TRUE(f.store->CompactCodebook().ok());
  CheckRound(&f, &rig, num_subjects, queries, "compact");

  // 8: vacuum (page re-cut; shape change flushes).
  {
    SecureStore::VacuumOptions vopts;
    ASSERT_TRUE(f.store->Vacuum(vopts).ok());
    CheckRound(&f, &rig, num_subjects, queries, "vacuum");
  }

  // The storm must have exercised both sides of the machinery.
  if (kCacheLive) {
    cache::ResultCache::Stats s = rig.results.stats();
    EXPECT_GT(s.hits, 0u);
    EXPECT_GT(s.invalidated + s.flushes, 0u);
  }
  EXPECT_EQ(f.store->epochs()->active_pins(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheDifferentialTest,
                         ::testing::Range(0, 8));  // 8 seeds

TEST(CachedDriverTest, RunAndBatchMatchUncachedAcrossUpdates) {
  Fixture f;
  BuildFixture(21, 1500, /*subjects=*/6, /*profiles=*/3, &f);
  CacheRig rig(f.store.get());
  std::vector<PatternTree> queries = MakeQueries(f.doc, 21);
  std::vector<SubjectId> subjects = {0, 1, 2, 3, 4, 5};

  QueryDriverOptions cached_opts;
  cached_opts.num_threads = 3;
  cached_opts.semantics = AccessSemantics::kBinding;
  cached_opts.caches = rig.caches;
  QueryDriver cached_driver(f.store.get(), cached_opts);

  QueryDriverOptions plain_opts = cached_opts;
  plain_opts.caches = QueryCaches{};
  QueryDriver plain_driver(f.store.get(), plain_opts);

  std::vector<QueryJob> jobs;
  for (const PatternTree& q : queries) {
    for (SubjectId s : subjects) jobs.push_back({s, q});
  }

  auto check_all_paths = [&](const char* when) {
    // Per-job driver path (threaded, single-flight inside one run).
    BatchResult cold = cached_driver.Run(jobs);
    BatchResult warm = cached_driver.Run(jobs);
    BatchResult live = plain_driver.Run(jobs);
    ASSERT_EQ(cold.stats.failed, 0u) << when << ": " << cold.stats.first_error;
    ASSERT_EQ(warm.stats.failed, 0u) << when;
    ASSERT_EQ(live.stats.failed, 0u) << when;
    for (size_t j = 0; j < jobs.size(); ++j) {
      EXPECT_EQ(cold.outcomes[j].result.answers,
                live.outcomes[j].result.answers)
          << when << " job " << j << " (cold vs uncached)";
      EXPECT_EQ(warm.outcomes[j].result.answers,
                live.outcomes[j].result.answers)
          << when << " job " << j << " (warm vs uncached)";
    }
    // Nothing invalidated between the two cached runs: every job hits.
    if (kCacheLive) {
      EXPECT_EQ(warm.stats.exec.result_cache_hits, jobs.size()) << when;
    }
    EXPECT_EQ(warm.stats.exec.access_only_fetches, 0u) << when;

    // Batch (multi-subject) path: classes probe the same keys.
    BatchEvaluator plain_batch(f.store.get());
    for (const PatternTree& q : queries) {
      auto cb = cached_driver.EvaluateForSubjects(q, subjects);
      ASSERT_TRUE(cb.ok()) << when << ": " << cb.status();
      EvalOptions bopts;
      bopts.semantics = AccessSemantics::kBinding;
      auto lb = plain_batch.Evaluate(q, subjects, bopts);
      ASSERT_TRUE(lb.ok()) << when << ": " << lb.status();
      for (size_t i = 0; i < subjects.size(); ++i) {
        EXPECT_EQ(cb->ResultFor(i).answers, lb->ResultFor(i).answers)
            << when << " subject " << subjects[i] << ": " << q.ToString();
      }
      // The rollup-sum identity holds with cache operators in the mix.
      ExecStats summed;
      for (const ClassEvalResult& cls : cb->classes) {
        summed += cls.result.exec;
      }
      EXPECT_EQ(cb->exec.result_cache_hits, summed.result_cache_hits) << when;
      EXPECT_EQ(cb->exec.result_cache_misses, summed.result_cache_misses)
          << when;
      EXPECT_EQ(cb->exec.epoch_pins, summed.epoch_pins) << when;
    }
  };

  check_all_paths("initial");
  ASSERT_TRUE(f.store->SetSubtreeAccess(40, 2, false).ok());
  check_all_paths("after-acl");
  ASSERT_TRUE(f.store->CompactCodebook().ok());
  check_all_paths("after-compact");
  if (kCacheLive) {
    EXPECT_GT(rig.results.stats().hits, 0u);
  }
}

TEST(CachedCoordinatorTest, ScatterMatchesUncachedAcrossUpdates) {
  ShardFixtureOptions o;
  o.seed = 9;
  o.num_subjects = 6;
  o.num_profiles = 3;
  ShardFixture f;
  BuildShardFixture(o, &f);

  // Invalidation rides shard 0's commit stream: every update reaches shard
  // 0 under the exclusive fence, and replicas publish in epoch lockstep.
  cache::ResultCache results;
  QueryPlanCache plans;
  AttachResultCacheInvalidation(f.sharded->shard_store(0), &results);

  ShardCoordinatorOptions cached_opts;
  cached_opts.semantics = AccessSemantics::kView;
  cached_opts.caches.results = &results;
  cached_opts.caches.plans = &plans;
  ShardCoordinator cached(f.sharded.get(), cached_opts);
  ShardCoordinatorOptions plain_opts;
  plain_opts.semantics = AccessSemantics::kView;
  ShardCoordinator plain(f.sharded.get(), plain_opts);

  std::vector<PatternTree> queries = MakeShardQueries(f.doc, 9, 3);
  std::vector<QueryJob> jobs;
  for (const PatternTree& q : queries) {
    for (SubjectId s = 0; s < o.num_subjects; ++s) jobs.push_back({s, q});
  }

  auto check = [&](const char* when) {
    for (const PatternTree& q : queries) {
      for (SubjectId s = 0; s < o.num_subjects; ++s) {
        auto c1 = cached.Evaluate(q, s);
        auto c2 = cached.Evaluate(q, s);
        auto lv = plain.Evaluate(q, s);
        ASSERT_TRUE(c1.ok() && c2.ok() && lv.ok()) << when;
        EXPECT_EQ(c1->answers, lv->answers) << when << " subject " << s;
        EXPECT_EQ(c2->answers, lv->answers) << when << " subject " << s;
        if (kCacheLive) {
          EXPECT_EQ(c2->exec.result_cache_hits, 1u) << when;
        }
      }
    }
    // The pre-scatter batch probe serves warm jobs without any scatter.
    BatchResult warm = cached.Run(jobs);
    BatchResult live = plain.Run(jobs);
    ASSERT_EQ(warm.stats.failed, 0u) << when;
    ASSERT_EQ(live.stats.failed, 0u) << when;
    for (size_t j = 0; j < jobs.size(); ++j) {
      EXPECT_EQ(warm.outcomes[j].result.answers,
                live.outcomes[j].result.answers)
          << when << " job " << j;
    }
    if (kCacheLive) {
      EXPECT_EQ(warm.stats.exec.result_cache_hits, jobs.size()) << when;
    }
  };

  check("initial");
  ASSERT_TRUE(f.sharded->SetSubtreeAccess(30, 1, false).ok());
  check("after-acl");
  ASSERT_TRUE(f.sharded->AddSubjectLike(2).ok());
  check("after-subject");
  if (kCacheLive) {
    EXPECT_GT(results.stats().hits, 0u);
    EXPECT_GT(results.stats().invalidated + results.stats().flushes, 0u);
  }
}

// Concurrent storm for the sanitizer leg: one updater commits ACL patches
// while reader threads stream cached evaluations through the shared caches.
// Every read must succeed; after the storm the caches must still serve
// exactly the live answers (no torn entries, no leaked flights or pins).
TEST(CacheConcurrencyTest, ReadersAndUpdaterShareTheCaches) {
  Fixture f;
  BuildFixture(33, 1200, /*subjects=*/4, /*profiles=*/2, &f);
  CacheRig rig(f.store.get());
  std::vector<PatternTree> queries = MakeQueries(f.doc, 33);
  const NodeId n = f.store->num_nodes();

  std::atomic<bool> failed{false};
  std::thread updater([&] {
    Rng rng(4242);
    for (int i = 0; i < 40 && !failed.load(); ++i) {
      NodeId begin = static_cast<NodeId>(rng.Uniform(n - 1));
      NodeId end = std::min<NodeId>(
          n, begin + 1 + static_cast<NodeId>(rng.Uniform(64)));
      SubjectId s = static_cast<SubjectId>(rng.Uniform(4));
      if (!f.store->SetRangeAccess(begin, end, s, i % 2 == 0).ok()) {
        failed.store(true);
      }
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      QueryEvaluator eval(f.store.get());
      Rng rng(100 + t);
      for (int i = 0; i < 80 && !failed.load(); ++i) {
        EvalOptions opts;
        opts.semantics =
            i % 2 == 0 ? AccessSemantics::kBinding : AccessSemantics::kView;
        opts.subject = static_cast<SubjectId>(rng.Uniform(4));
        auto r = EvaluateWithCaches(f.store.get(), &eval,
                                    queries[i % queries.size()], opts,
                                    rig.caches);
        if (!r.ok()) failed.store(true);
      }
    });
  }
  updater.join();
  for (std::thread& t : readers) t.join();
  ASSERT_FALSE(failed.load());

  // Quiesced: cached answers equal live ones for every key we can probe.
  CheckRound(&f, &rig, 4, queries, "post-storm");
  EXPECT_EQ(f.store->epochs()->active_pins(), 0u);
}

}  // namespace
}  // namespace secxml
