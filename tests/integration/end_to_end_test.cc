// End-to-end integration: the full paper pipeline on one fixture —
// generate a document, derive multi-subject rights, build the secured
// store on a real disk file, query under every semantics, apply
// accessibility and structural updates, persist, compact, reopen, and
// stream a filtered view — asserting cross-component invariants at each
// step.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "core/stream_filter.h"
#include "nok/tag_index.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/sax.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

TEST(EndToEndTest, FullPipelineOnDisk) {
  auto dir = std::filesystem::temp_directory_path();
  auto store_path = dir / "secxml_e2e_store.db";
  auto index_path = dir / "secxml_e2e_index.db";
  auto compact_path = dir / "secxml_e2e_compact.db";
  for (const auto& p : {store_path, index_path, compact_path}) {
    std::filesystem::remove(p);
  }

  // 1. Document + rights.
  XMarkOptions xopts;
  xopts.seed = 12;
  xopts.target_nodes = 8000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  SyntheticAclOptions aopts;
  aopts.accessibility_ratio = 0.7;
  aopts.force_root_accessible = true;
  aopts.seed = 5;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, 4, aopts);
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());

  // 2. Secured store on a real file.
  auto created = FilePagedFile::Create(store_path.string());
  ASSERT_TRUE(created.ok());
  std::unique_ptr<SecureStore> store;
  NokStoreOptions sopts;
  sopts.max_records_per_page = 96;
  ASSERT_TRUE(
      SecureStore::Build(doc, labeling, created->get(), sopts, &store).ok());
  ASSERT_TRUE(store->nok()->CheckIntegrity().ok());

  // 3. Disk tag index agrees with the store.
  auto index_file = FilePagedFile::Create(index_path.string());
  ASSERT_TRUE(index_file.ok());
  std::unique_ptr<DiskTagIndex> index;
  ASSERT_TRUE(
      DiskTagIndex::Build(store->nok(), index_file->get(), 64, &index).ok());
  EXPECT_EQ(index->num_entries(), doc.NumNodes());

  // 4. Queries under the three semantics are consistently ordered.
  QueryEvaluator eval(store.get());
  for (const char* q : {"//item[location]/name", "//listitem//keyword"}) {
    EvalOptions none, binding, view;
    binding.semantics = AccessSemantics::kBinding;
    view.semantics = AccessSemantics::kView;
    auto rn = eval.EvaluateXPath(q, none);
    auto rb = eval.EvaluateXPath(q, binding);
    auto rv = eval.EvaluateXPath(q, view);
    ASSERT_TRUE(rn.ok() && rb.ok() && rv.ok()) << q;
    EXPECT_GE(rn->answers.size(), rb->answers.size()) << q;
    EXPECT_TRUE(std::includes(rb->answers.begin(), rb->answers.end(),
                              rv->answers.begin(), rv->answers.end()))
        << q;
  }

  // 5. Accessibility update: revoke a mid-size subtree from subject 0 and
  // confirm a query loses exactly the answers inside it.
  NodeId revoked_root = kInvalidNode;
  for (NodeId n = 0; n < doc.NumNodes(); ++n) {
    if (doc.SubtreeSize(n) > 500 && doc.SubtreeSize(n) < 2000) {
      revoked_root = n;
      break;
    }
  }
  ASSERT_NE(revoked_root, kInvalidNode);
  EvalOptions secure;
  secure.semantics = AccessSemantics::kBinding;
  auto before = eval.EvaluateXPath("//item/name", secure);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(store->SetSubtreeAccess(revoked_root, 0, false).ok());
  auto after = eval.EvaluateXPath("//item/name", secure);
  ASSERT_TRUE(after.ok());
  NodeId rend = doc.SubtreeEnd(revoked_root);
  std::vector<NodeId> expected;
  for (NodeId n : before->answers) {
    if (n < revoked_root || n >= rend) expected.push_back(n);
  }
  EXPECT_EQ(after->answers, expected);

  // 6. Structural update: delete a small subtree, insert a labeled one.
  NodeId del_root = kInvalidNode;
  for (NodeId n = 1; n < doc.NumNodes(); ++n) {
    if (doc.SubtreeSize(n) >= 20 && doc.SubtreeSize(n) <= 60) {
      del_root = n;
      break;
    }
  }
  ASSERT_NE(del_root, kInvalidNode);
  NodeId deleted_size = doc.SubtreeSize(del_root);
  ASSERT_TRUE(store->DeleteSubtree(del_root).ok());
  EXPECT_EQ(store->num_nodes(), doc.NumNodes() - deleted_size);

  Document frag;
  ASSERT_TRUE(
      ParseXml("<audit_note><stamp>e2e</stamp></audit_note>", &frag).ok());
  DenseAccessMap fmap(2, 4);
  for (SubjectId s = 0; s < 4; ++s) fmap.SetSubtree(frag, s, 0, s != 2);
  DolLabeling flab = DolLabeling::Build(fmap);
  auto pos = store->InsertSubtree(0, kInvalidNode, frag, flab);
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(*pos, 1u);
  ASSERT_TRUE(store->nok()->CheckIntegrity().ok());
  auto s2 = store->Accessible(2, *pos);
  auto s1 = store->Accessible(1, *pos);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_TRUE(*s1);
  EXPECT_FALSE(*s2);
  // The inserted node is queryable.
  auto found = eval.EvaluateXPath("//audit_note/stamp", secure);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->answers.size(), 1u);
  EXPECT_EQ(store->nok()->Value(
                store->nok()->Record(found->answers[0]).value()),
            "e2e");

  // 7. Persist, reopen the raw NoK layer, and verify codes survived.
  ASSERT_TRUE(store->nok()->Persist().ok());
  {
    auto reopened_file = FilePagedFile::Open(store_path.string());
    ASSERT_TRUE(reopened_file.ok());
    std::unique_ptr<NokStore> reopened;
    ASSERT_TRUE(NokStore::Open(reopened_file->get(), sopts, &reopened).ok());
    ASSERT_EQ(reopened->num_nodes(), store->num_nodes());
    ASSERT_TRUE(reopened->CheckIntegrity().ok());
    for (NodeId n = 0; n < reopened->num_nodes(); n += 97) {
      auto ca = store->nok()->AccessCode(n);
      auto cb = reopened->AccessCode(n);
      ASSERT_TRUE(ca.ok() && cb.ok());
      ASSERT_EQ(*ca, *cb) << n;
    }
  }

  // 8. Compact reclaims orphaned pages while preserving everything.
  {
    auto compact_file = FilePagedFile::Create(compact_path.string());
    ASSERT_TRUE(compact_file.ok());
    std::unique_ptr<NokStore> compacted;
    ASSERT_TRUE(store->nok()
                    ->CompactTo(compact_file->get(), sopts, &compacted)
                    .ok());
    EXPECT_LT(compacted->buffer_pool() ? (*compact_file)->NumPages() : 0,
              created->get()->NumPages());
    ASSERT_TRUE(compacted->CheckIntegrity().ok());
    ASSERT_EQ(compacted->num_nodes(), store->num_nodes());
    for (NodeId n = 0; n < compacted->num_nodes(); n += 131) {
      auto ca = store->nok()->AccessCode(n);
      auto cb = compacted->AccessCode(n);
      ASSERT_TRUE(ca.ok() && cb.ok());
      ASSERT_EQ(*ca, *cb) << n;
    }
  }

  // 9. Streaming dissemination for subject 1 parses and hides what it must.
  {
    auto extracted = store->ExtractLabeling();
    ASSERT_TRUE(extracted.ok());
    // Serialize the *current* document state from the store itself.
    // (The original `doc` is stale after structural updates, so rebuild a
    // Document snapshot through the writer is not possible; instead stream
    // the original doc against the original labeling.)
    std::string original_xml = WriteXml(doc);
    std::string view;
    SecureStreamFilter filter(&labeling, 1, &view);
    ASSERT_TRUE(ParseXmlStream(original_xml, &filter).ok());
    if (!view.empty()) {
      Document parsed;
      ASSERT_TRUE(ParseXml(view, &parsed).ok());
      EXPECT_LE(parsed.NumNodes(), doc.NumNodes());
    }
  }

  for (const auto& p : {store_path, index_path, compact_path}) {
    std::filesystem::remove(p);
  }
}

}  // namespace
}  // namespace secxml
