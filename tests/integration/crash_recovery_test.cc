// Crash-recovery chaos suite (ctest -L fault): the store is killed at every
// WAL record boundary of a mixed update sequence and recovered from exactly
// the bytes that reached the device — whatever the buffer pool still held
// is gone. Contracts:
//
//  * Recovery at boundary k reproduces the never-crashed store's state
//    after update k exactly: the extracted labeling and the codebook are
//    byte-identical, and every query answers the same under both semantics.
//  * A torn WAL append or a dying sync fails the *update* (fail-closed,
//    store unchanged), and a crash right after recovers the pre-update
//    state — no query ever observes a half-applied update.
//  * A checkpoint that dies mid-Persist leaves the previous checkpoint
//    recoverable, and the untruncated log still replays past it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/fault_file.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "xml/xml_parser.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kSubjects = 4;

NokStoreOptions StoreOptions() {
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  sopts.buffer_pool_pages = 24;  // tiny pool: evictions scatter dirty pages
  return sopts;
}

struct WalFixture {
  Document doc;
  MemPagedFile data;
  MemPagedFile wal;
  std::unique_ptr<SecureStore> store;
};

void BuildWalFixture(uint64_t seed, uint32_t nodes, WalFixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 300;
  xopts.target_nodes = nodes;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  NodeId n = static_cast<NodeId>(f->doc.NumNodes());
  Rng rng(seed * 13 + 5);
  IntervalAccessMap map(n, kSubjects);
  for (SubjectId s = 0; s < kSubjects; ++s) {
    std::vector<AclSeed> seeds = {{0, rng.Bernoulli(0.5)}};
    for (int i = 0; i < 20; ++i) {
      seeds.push_back(
          {static_cast<NodeId>(rng.Uniform(n)), rng.Bernoulli(0.5)});
    }
    map.SetSubjectIntervals(s, PropagateMostSpecificOverride(f->doc, seeds));
  }
  DolLabeling labeling =
      DolLabeling::BuildFromEvents(n, map.InitialAcl(), map.CollectEvents());
  ASSERT_TRUE(SecureStore::BuildWithWal(f->doc, labeling, &f->data, &f->wal,
                                        StoreOptions(), &f->store)
                  .ok());
}

// The crash model: copy exactly the bytes that reached the device. The live
// store keeps running; the copy is what a post-crash open sees (dirty
// buffer-pool pages never written are lost with the process).
void SnapshotFile(PagedFile* src, MemPagedFile* dst) {
  Page page;
  for (PageId id = 0; id < src->NumPages(); ++id) {
    ASSERT_TRUE(src->ReadPage(id, &page).ok());
    auto alloc = dst->AllocatePage();
    ASSERT_TRUE(alloc.ok());
    ASSERT_TRUE(dst->WritePage(*alloc, page).ok());
  }
}

// Canonical logical fingerprint of a store's secured content: the
// re-extracted DOL labeling (transitions + codebook) serialized. Two stores
// with equal fingerprints answer every access check identically.
std::string Fingerprint(SecureStore* store) {
  auto labeling = store->ExtractLabeling();
  EXPECT_TRUE(labeling.ok()) << labeling.status();
  if (!labeling.ok()) return {};
  std::vector<uint8_t> bytes = labeling->Serialize();
  std::vector<uint8_t> cb = store->codebook().Serialize();
  std::string fp(bytes.begin(), bytes.end());
  fp.append(cb.begin(), cb.end());
  return fp;
}

std::vector<std::vector<NodeId>> AnswerSet(
    SecureStore* store, const std::vector<PatternTree>& queries) {
  std::vector<std::vector<NodeId>> out;
  QueryEvaluator eval(store);
  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    for (const PatternTree& q : queries) {
      for (SubjectId s = 0; s < kSubjects; ++s) {
        EvalOptions opts;
        opts.semantics = sem;
        opts.subject = s;
        auto r = eval.Evaluate(q, opts);
        EXPECT_TRUE(r.ok()) << r.status();
        out.push_back(r.ok() ? r->answers : std::vector<NodeId>{});
      }
    }
  }
  return out;
}

// One scripted update; kinds cycle so the sequence covers ACL range writes,
// structural surgery, subject management, compaction, and a mid-sequence
// checkpoint.
Status ApplyScriptedUpdate(WalFixture* f, int i, Rng* rng) {
  const NodeId n = f->store->num_nodes();
  switch (i % 7) {
    case 0:
    case 3: {
      NodeId begin = static_cast<NodeId>(rng->Uniform(n - 1));
      NodeId end =
          begin + 1 + static_cast<NodeId>(rng->Uniform(120)) < n
              ? begin + 1 + static_cast<NodeId>(rng->Uniform(120))
              : n;
      return f->store->SetRangeAccess(
          begin, end, static_cast<SubjectId>(rng->Uniform(kSubjects)),
          rng->Bernoulli(0.5));
    }
    case 1: {
      NodeId root = 1 + static_cast<NodeId>(rng->Uniform(n - 1));
      return f->store->DeleteSubtree(root);
    }
    case 2: {
      Document frag;
      SECXML_RETURN_NOT_OK(
          ParseXml("<wal_frag><x>1</x><y>2</y></wal_frag>", &frag));
      DenseAccessMap fmap(static_cast<NodeId>(frag.NumNodes()),
                          f->store->codebook().num_subjects());
      for (SubjectId s = 0; s < f->store->codebook().num_subjects(); ++s) {
        fmap.SetSubtree(frag, s, 0, s % 2 == 0);
      }
      auto pos = f->store->InsertSubtree(0, kInvalidNode, frag,
                                         DolLabeling::Build(fmap));
      return pos.ok() ? Status::OK() : pos.status();
    }
    case 4: {
      auto added = f->store->AddSubjectLike(
          static_cast<SubjectId>(rng->Uniform(kSubjects)));
      if (!added.ok()) return added.status();
      return f->store->RemoveSubject(*added);
    }
    case 5:
      return f->store->CompactCodebook();
    default:
      return f->store->SetSubtreeAccess(
          1 + static_cast<NodeId>(rng->Uniform(n - 1)),
          static_cast<SubjectId>(rng->Uniform(kSubjects)),
          rng->Bernoulli(0.5));
  }
}

class CrashRecoveryTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashRecoveryTest, CrashAtEveryWalRecordBoundary) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  WalFixture f;
  BuildWalFixture(seed, 1600, &f);
  Rng rng(seed * 41 + 3);

  std::vector<PatternTree> queries;
  for (int i = 0; i < 2; ++i) {
    QueryGenOptions qopts;
    qopts.seed = seed * 700 + static_cast<uint64_t>(i);
    qopts.max_nodes = 3;
    queries.push_back(GenerateTwigQuery(f.doc, qopts));
  }

  struct Boundary {
    std::unique_ptr<MemPagedFile> data;
    std::unique_ptr<MemPagedFile> wal;
    std::string fingerprint;
    std::vector<std::vector<NodeId>> answers;
  };
  constexpr int kUpdates = 10;
  std::vector<Boundary> boundaries;

  auto capture = [&] {
    Boundary b;
    b.data = std::make_unique<MemPagedFile>();
    b.wal = std::make_unique<MemPagedFile>();
    SnapshotFile(&f.data, b.data.get());
    SnapshotFile(&f.wal, b.wal.get());
    b.fingerprint = Fingerprint(f.store.get());
    b.answers = AnswerSet(f.store.get(), queries);
    boundaries.push_back(std::move(b));
  };

  capture();  // boundary 0: the initial checkpoint, no updates
  for (int i = 0; i < kUpdates; ++i) {
    ASSERT_TRUE(ApplyScriptedUpdate(&f, i, &rng).ok()) << "update " << i;
    if (i == kUpdates / 2) {
      // Mid-sequence checkpoint: later boundaries recover from it, earlier
      // ones from the initial checkpoint with a longer replay.
      ASSERT_TRUE(f.store->Checkpoint().ok());
    }
    capture();
  }

  for (size_t k = 0; k < boundaries.size(); ++k) {
    std::unique_ptr<SecureStore> recovered;
    SecureStore::RecoveryStats rs;
    Status st =
        SecureStore::OpenWithWal(boundaries[k].data.get(),
                                 boundaries[k].wal.get(), StoreOptions(),
                                 &recovered, &rs);
    ASSERT_TRUE(st.ok()) << "crash point " << k << ": " << st;
    EXPECT_EQ(rs.records_replayed, rs.records_in_log)
        << "crash point " << k << " (log had exactly the post-checkpoint "
        << "records)";
    EXPECT_EQ(recovered->update_stats().updates_replayed, rs.records_replayed);
    EXPECT_EQ(Fingerprint(recovered.get()), boundaries[k].fingerprint)
        << "crash point " << k << ": recovered state differs from the "
        << "never-crashed baseline";
    EXPECT_EQ(AnswerSet(recovered.get(), queries), boundaries[k].answers)
        << "crash point " << k;
    EXPECT_EQ(recovered->epochs()->active_pins(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashRecoveryTest, ::testing::Range(1, 5));

TEST(CrashRecoveryTest, TornWalAppendFailsClosedAndRecoversPreUpdateState) {
  WalFixture f;
  Document doc;
  {
    // Rebuild through a fault layer on the WAL file so appends can tear.
    XMarkOptions xopts;
    xopts.seed = 901;
    xopts.target_nodes = 1200;
    ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  }
  NodeId n = static_cast<NodeId>(doc.NumNodes());
  Rng rng(55);
  IntervalAccessMap map(n, kSubjects);
  for (SubjectId s = 0; s < kSubjects; ++s) {
    std::vector<AclSeed> seeds = {{0, rng.Bernoulli(0.5)}};
    for (int i = 0; i < 15; ++i) {
      seeds.push_back(
          {static_cast<NodeId>(rng.Uniform(n)), rng.Bernoulli(0.5)});
    }
    map.SetSubjectIntervals(s, PropagateMostSpecificOverride(doc, seeds));
  }
  DolLabeling labeling =
      DolLabeling::BuildFromEvents(n, map.InitialAcl(), map.CollectEvents());
  MemPagedFile data_base, wal_base;
  FaultInjectingPagedFile wal_fault(&wal_base);
  wal_fault.set_enabled(false);
  std::unique_ptr<SecureStore> store;
  ASSERT_TRUE(SecureStore::BuildWithWal(doc, labeling, &data_base, &wal_fault,
                                        StoreOptions(), &store)
                  .ok());
  ASSERT_TRUE(store->SetSubtreeAccess(1, 0, false).ok());  // one clean update
  std::string fp_before = Fingerprint(store.get());
  uint64_t lsn_before = store->applied_lsn();

  // The next update's WAL append tears and the page stays bad (so the
  // best-effort invalidation cannot land either) — the harshest torn-write
  // outcome. The update must fail without touching committed state.
  FaultOptions chaos;
  chaos.torn_writes = true;
  chaos.persistent = true;
  chaos.write_fault_prob = 1.0;
  wal_fault.SetOptions(chaos);
  wal_fault.set_enabled(true);
  Status st = store->SetSubtreeAccess(2, 1, false);
  EXPECT_FALSE(st.ok());
  wal_fault.set_enabled(false);
  wal_fault.ClearPageFaults();

  // Fail-closed live: nothing changed, and the store keeps working.
  EXPECT_EQ(store->applied_lsn(), lsn_before);
  EXPECT_EQ(Fingerprint(store.get()), fp_before);
  ASSERT_TRUE(store->SetSubtreeAccess(3, 1, true).ok());
  std::string fp_after = Fingerprint(store.get());

  // Crash now: recovery drops the torn record, replays the clean ones, and
  // lands exactly on the live store's state.
  MemPagedFile data_img, wal_img;
  SnapshotFile(&data_base, &data_img);
  SnapshotFile(&wal_base, &wal_img);
  std::unique_ptr<SecureStore> recovered;
  SecureStore::RecoveryStats rs;
  ASSERT_TRUE(SecureStore::OpenWithWal(&data_img, &wal_img, StoreOptions(),
                                       &recovered, &rs)
                  .ok());
  // The torn record never replays; whether its residue still reads as a
  // torn tail depends on where the tear landed (the follow-up append may
  // have overwritten it) — wal_test pins the detection itself.
  EXPECT_EQ(Fingerprint(recovered.get()), fp_after);
}

TEST(CrashRecoveryTest, DyingWalSyncAbortsTheUpdate) {
  MemPagedFile data_raw, wal_raw;
  FaultInjectingPagedFile wal_fault(&wal_raw);
  wal_fault.set_enabled(false);
  std::unique_ptr<SecureStore> store;
  {
    XMarkOptions xopts;
    xopts.seed = 331;
    xopts.target_nodes = 1000;
    Document doc;
    ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
    NodeId n = static_cast<NodeId>(doc.NumNodes());
    DenseAccessMap map(n, 2);
    for (SubjectId s = 0; s < 2; ++s) map.SetSubtree(doc, s, 0, true);
    ASSERT_TRUE(SecureStore::BuildWithWal(doc, DolLabeling::Build(map),
                                          &data_raw, &wal_fault,
                                          StoreOptions(), &store)
                    .ok());
  }
  std::string fp = Fingerprint(store.get());

  wal_fault.set_enabled(true);
  wal_fault.FailNext(FaultOp::kSync, 1);
  Status st = store->SetSubtreeAccess(1, 0, false);
  EXPECT_FALSE(st.ok());
  wal_fault.set_enabled(false);

  // Unchanged live; unchanged after a crash.
  EXPECT_EQ(Fingerprint(store.get()), fp);
  MemPagedFile data_img, wal_img;
  SnapshotFile(&data_raw, &data_img);
  SnapshotFile(&wal_raw, &wal_img);
  std::unique_ptr<SecureStore> recovered;
  ASSERT_TRUE(SecureStore::OpenWithWal(&data_img, &wal_img, StoreOptions(),
                                       &recovered, nullptr)
                  .ok());
  EXPECT_EQ(Fingerprint(recovered.get()), fp);

  // The store retries successfully once the device heals.
  ASSERT_TRUE(store->SetSubtreeAccess(1, 0, false).ok());
}

TEST(CrashRecoveryTest, CheckpointDyingMidPersistKeepsPriorCheckpoint) {
  MemPagedFile data_raw, wal_raw;
  FaultInjectingPagedFile data_fault(&data_raw);
  data_fault.set_enabled(false);
  std::unique_ptr<SecureStore> store;
  Document doc;
  {
    XMarkOptions xopts;
    xopts.seed = 77;
    xopts.target_nodes = 1200;
    ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
    NodeId n = static_cast<NodeId>(doc.NumNodes());
    DenseAccessMap map(n, 2);
    map.SetSubtree(doc, 0, 0, true);
    map.SetSubtree(doc, 1, 0, false);
    ASSERT_TRUE(SecureStore::BuildWithWal(doc, DolLabeling::Build(map),
                                          &data_fault, &wal_raw,
                                          StoreOptions(), &store)
                    .ok());
  }
  ASSERT_TRUE(store->SetSubtreeAccess(1, 1, true).ok());
  ASSERT_TRUE(store->SetSubtreeAccess(2, 0, false).ok());
  std::string fp = Fingerprint(store.get());

  // Checkpoint dies on its data sync. The WAL must NOT have been truncated
  // (truncation only follows a successful persist).
  data_fault.set_enabled(true);
  data_fault.FailNext(FaultOp::kSync, 1);
  EXPECT_FALSE(store->Checkpoint().ok());
  data_fault.set_enabled(false);
  EXPECT_GE(store->wal()->num_records(), 2u);

  // Crash: recovery starts from the *initial* checkpoint and replays both
  // updates — the failed checkpoint lost nothing.
  MemPagedFile data_img, wal_img;
  SnapshotFile(&data_raw, &data_img);
  SnapshotFile(&wal_raw, &wal_img);
  std::unique_ptr<SecureStore> recovered;
  SecureStore::RecoveryStats rs;
  ASSERT_TRUE(SecureStore::OpenWithWal(&data_img, &wal_img, StoreOptions(),
                                       &recovered, &rs)
                  .ok());
  EXPECT_EQ(rs.records_replayed, 2u);
  EXPECT_EQ(Fingerprint(recovered.get()), fp);

  // And a later successful checkpoint truncates the log for good.
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->wal()->num_records(), 0u);
  MemPagedFile data_img2, wal_img2;
  SnapshotFile(&data_raw, &data_img2);
  SnapshotFile(&wal_raw, &wal_img2);
  std::unique_ptr<SecureStore> recovered2;
  SecureStore::RecoveryStats rs2;
  ASSERT_TRUE(SecureStore::OpenWithWal(&data_img2, &wal_img2, StoreOptions(),
                                       &recovered2, &rs2)
                  .ok());
  EXPECT_EQ(rs2.records_replayed, 0u);
  EXPECT_EQ(Fingerprint(recovered2.get()), fp);
}

}  // namespace
}  // namespace secxml
