// Concurrent reader/writer stress (ctest -L concurrency; TSan target): one
// writer streams ACL and structural updates through the store while reader
// threads evaluate queries nonstop. Contracts:
//
//  * Every query's answers equal the oracle of the epoch its snapshot pin
//    captured — never a half-applied update, never a neighbouring epoch's
//    state. The writer toggles a multi-page subtree between two known
//    states, so any torn observation produces an answer set matching
//    neither oracle.
//  * No leaked pins or epochs once everyone joins: active_pins() == 0,
//    pins == unpins, every retired snapshot reclaimed, no buffer-pool pin
//    left behind.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/dol_labeling.h"
#include "core/policy.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kSubjects = 3;
constexpr int kReaders = 4;
constexpr int kWriterUpdates = 60;
constexpr int kReaderIters = 120;

struct StressFixture {
  Document doc;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
  NodeId toggle_root = 0;  // the subtree the writer flips
};

void BuildStressFixture(uint64_t seed, StressFixture* f) {
  XMarkOptions xopts;
  xopts.seed = seed + 41;
  xopts.target_nodes = 2000;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  NodeId n = static_cast<NodeId>(f->doc.NumNodes());
  DenseAccessMap map(n, kSubjects);
  for (SubjectId s = 0; s < kSubjects; ++s) map.SetSubtree(f->doc, s, 0, true);
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;
  ASSERT_TRUE(SecureStore::Build(f->doc, DolLabeling::Build(map), &f->file,
                                 sopts, &f->store)
                  .ok());
}

// Deepest ancestor subtree of `answer` spanning at least `min_size` nodes
// (several pages, so a torn toggle would be observable), preferring deep =
// small so the toggle does not swallow the whole document.
NodeId PickToggleRoot(const Document& doc, NodeId answer, NodeId min_size) {
  NodeId best = 0;
  for (NodeId x = 1; x < doc.NumNodes() && x <= answer; ++x) {
    NodeId size = doc.SubtreeSize(x);
    if (answer >= x && answer < x + size && size >= min_size) best = x;
  }
  return best;
}

// A query with answers for subject 0 plus a toggle subtree that intersects
// them — so revoking the subtree provably changes the answer set.
void PickQueryAndToggle(StressFixture* f, uint64_t qseed,
                        PatternTree* query) {
  QueryEvaluator eval(f->store.get());
  for (int attempt = 0; attempt < 16; ++attempt) {
    QueryGenOptions qopts;
    qopts.seed = qseed + static_cast<uint64_t>(attempt) * 97;
    qopts.max_nodes = 3;
    PatternTree q = GenerateTwigQuery(f->doc, qopts);
    EvalOptions opts;
    opts.semantics = AccessSemantics::kBinding;
    opts.subject = 0;
    auto r = eval.Evaluate(q, opts);
    ASSERT_TRUE(r.ok()) << r.status();
    for (NodeId a : r->answers) {
      NodeId root = PickToggleRoot(f->doc, a, 60);
      if (root != 0) {
        f->toggle_root = root;
        *query = std::move(q);
        return;
      }
    }
  }
  FAIL() << "no query/toggle pair found for seed " << qseed;
}

TEST(UpdateConcurrencyTest, ReadersMatchTheirPinnedEpochsOracle) {
  StressFixture f;
  BuildStressFixture(17, &f);
  SecureStore* store = f.store.get();

  PatternTree query;
  PickQueryAndToggle(&f, 1234, &query);
  ASSERT_NE(f.toggle_root, 0u);

  // Precompute the two oracle answer sets per semantics: state A (subtree
  // accessible to subject 0, the initial state) and state B (revoked). The
  // writer only ever toggles between them, and each committed toggle
  // advances the epoch by exactly one — so the oracle for epoch E is a
  // pure function of E's parity: epoch 1+2k is state A, epoch 2+2k state B.
  std::vector<std::vector<NodeId>> oracle_a, oracle_b;  // [semantics]
  {
    QueryEvaluator eval(store);
    for (AccessSemantics sem :
         {AccessSemantics::kBinding, AccessSemantics::kView}) {
      EvalOptions opts;
      opts.semantics = sem;
      opts.subject = 0;
      auto ra = eval.Evaluate(query, opts);
      ASSERT_TRUE(ra.ok());
      oracle_a.push_back(ra->answers);
    }
    ASSERT_TRUE(store->SetSubtreeAccess(f.toggle_root, 0, false).ok());
    for (AccessSemantics sem :
         {AccessSemantics::kBinding, AccessSemantics::kView}) {
      EvalOptions opts;
      opts.semantics = sem;
      opts.subject = 0;
      auto rb = eval.Evaluate(query, opts);
      ASSERT_TRUE(rb.ok());
      oracle_b.push_back(rb->answers);
    }
    // The toggled subtree must actually affect this query, or the oracle
    // check is vacuous; regenerate deterministically if it does not.
    ASSERT_NE(oracle_a[0], oracle_b[0])
        << "toggle subtree does not intersect the query; pick another seed";
    ASSERT_TRUE(store->SetSubtreeAccess(f.toggle_root, 0, true).ok());
  }
  // Two setup toggles happened: current epoch is 3 (= state A parity).
  const EpochManager::Epoch base_epoch = store->epochs()->current();
  ASSERT_EQ(base_epoch, 3u);

  std::atomic<bool> writer_done{false};
  std::atomic<int> mismatches{0};

  std::thread writer([&] {
    bool accessible = true;
    for (int i = 0; i < kWriterUpdates; ++i) {
      accessible = !accessible;
      Status st = store->SetSubtreeAccess(f.toggle_root, 0, accessible);
      ASSERT_TRUE(st.ok()) << st;
    }
    writer_done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      QueryEvaluator eval(store);
      for (int i = 0; i < kReaderIters; ++i) {
        AccessSemantics sem = (i + t) % 2 == 0 ? AccessSemantics::kBinding
                                               : AccessSemantics::kView;
        size_t si = sem == AccessSemantics::kBinding ? 0 : 1;
        // The outer pin fixes the epoch; the evaluator's inner pin adopts
        // it, so the answers below are this epoch's by construction — the
        // test is that they match the *oracle* for that epoch.
        SecureStore::SnapshotPin pin(store);
        EpochManager::Epoch e = pin.epoch();
        EvalOptions opts;
        opts.semantics = sem;
        opts.subject = 0;
        auto r = eval.Evaluate(query, opts);
        ASSERT_TRUE(r.ok()) << r.status();
        const std::vector<NodeId>& want =
            (e - base_epoch) % 2 == 0 ? oracle_a[si] : oracle_b[si];
        if (r->answers != want) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "reader " << t << " iter " << i << " epoch " << e
                        << " answers do not match its epoch's oracle";
        }
        EXPECT_EQ(r->exec.epoch_pins, 1u);
      }
    });
  }

  writer.join();
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_TRUE(writer_done.load());
  EXPECT_EQ(store->epochs()->current(),
            base_epoch + static_cast<EpochManager::Epoch>(kWriterUpdates));

  // Zero leaked pins or epochs.
  EXPECT_EQ(store->epochs()->active_pins(), 0u);
  EpochManager::Stats es = store->epochs()->stats();
  EXPECT_EQ(es.pins, es.unpins);
  EXPECT_EQ(es.retired, es.reclaimed);
  EXPECT_EQ(store->nok()->buffer_pool()->num_pinned(), 0u);

  // The final state is exactly state A or B (kWriterUpdates parity), not
  // something in between.
  QueryEvaluator eval(store);
  EvalOptions opts;
  opts.semantics = AccessSemantics::kBinding;
  opts.subject = 0;
  auto final_r = eval.Evaluate(query, opts);
  ASSERT_TRUE(final_r.ok());
  EXPECT_EQ(final_r->answers,
            kWriterUpdates % 2 == 0 ? oracle_a[0] : oracle_b[0]);
}

TEST(UpdateConcurrencyTest, MixedUpdateStormKeepsEveryAnswerConsistent) {
  // A harsher storm: the writer interleaves subtree toggles with subject
  // adds/removes and a compaction (the cache-dropping paths), while readers
  // check a weaker but torn-state-sensitive invariant — the answer set must
  // equal the oracle of *some* toggle state, never a mixture. Subject 0's
  // rights are only ever changed by whole-subtree toggles, so every
  // committed epoch's answer is one of the two oracles.
  StressFixture f;
  BuildStressFixture(23, &f);
  SecureStore* store = f.store.get();

  PatternTree query;
  PickQueryAndToggle(&f, 555, &query);
  ASSERT_NE(f.toggle_root, 0u);

  std::vector<NodeId> oracle_a, oracle_b;
  {
    QueryEvaluator eval(store);
    EvalOptions opts;
    opts.semantics = AccessSemantics::kView;
    opts.subject = 0;
    auto ra = eval.Evaluate(query, opts);
    ASSERT_TRUE(ra.ok());
    oracle_a = ra->answers;
    ASSERT_TRUE(store->SetSubtreeAccess(f.toggle_root, 0, false).ok());
    auto rb = eval.Evaluate(query, opts);
    ASSERT_TRUE(rb.ok());
    oracle_b = rb->answers;
    ASSERT_TRUE(store->SetSubtreeAccess(f.toggle_root, 0, true).ok());
    ASSERT_NE(oracle_a, oracle_b);
  }

  std::thread writer([&] {
    bool accessible = true;
    for (int i = 0; i < 30; ++i) {
      accessible = !accessible;
      ASSERT_TRUE(
          store->SetSubtreeAccess(f.toggle_root, 0, accessible).ok());
      if (i % 5 == 1) {
        auto added = store->AddSubjectLike(0);
        ASSERT_TRUE(added.ok());
        ASSERT_TRUE(store->RemoveSubject(*added).ok());
      }
      if (i == 15) ASSERT_TRUE(store->CompactCodebook().ok());
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      QueryEvaluator eval(store);
      for (int i = 0; i < 60; ++i) {
        EvalOptions opts;
        opts.semantics = AccessSemantics::kView;
        opts.subject = 0;
        auto r = eval.Evaluate(query, opts);
        ASSERT_TRUE(r.ok()) << r.status();
        EXPECT_TRUE(r->answers == oracle_a || r->answers == oracle_b)
            << "iter " << i << ": answer set matches neither toggle state "
            << "(torn observation)";
      }
    });
  }

  writer.join();
  for (std::thread& th : readers) th.join();

  EXPECT_EQ(store->epochs()->active_pins(), 0u);
  EpochManager::Stats es = store->epochs()->stats();
  EXPECT_EQ(es.pins, es.unpins);
  EXPECT_EQ(es.retired, es.reclaimed);
  EXPECT_EQ(store->nok()->buffer_pool()->num_pinned(), 0u);
}

}  // namespace
}  // namespace secxml
