// Cross-shard crash recovery: dropping a ShardedStore at any point of the
// two-phase checkpoint and reopening over the same files must bring every
// shard to one common LSN with answers identical to a single store that
// received the same updates. Crash = destroy the store object; the
// ShardFileSet's MemPagedFiles play the surviving disk.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "query/evaluator.h"
#include "serve/shard_coordinator.h"
#include "serve/sharded_store.h"
#include "shard_test_util.h"

namespace secxml {
namespace {

constexpr size_t kShards = 4;

// Applies the same mixed update sequence to the sharded store and the single
// reference store.
void ApplyUpdates(ShardedStore* sharded, SecureStore* single) {
  const NodeId n = sharded->num_nodes();
  for (int i = 1; i <= 5; ++i) {
    const NodeId target = static_cast<NodeId>(i * n / 7);
    ASSERT_TRUE(sharded->SetSubtreeAccess(target, i % 3, i % 2 == 0).ok());
    ASSERT_TRUE(single->SetSubtreeAccess(target, i % 3, i % 2 == 0).ok());
  }
  auto ga = sharded->AddSubject(true);
  auto sa = single->AddSubject(true);
  ASSERT_TRUE(ga.ok() && sa.ok());
  ASSERT_TRUE(sharded->DeleteSubtree(n / 2).ok());
  ASSERT_TRUE(single->DeleteSubtree(n / 2).ok());
}

void ExpectMatchesSingle(ShardedStore* sharded, SecureStore* single,
                         const std::vector<PatternTree>& queries,
                         size_t num_subjects, const char* what) {
  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kView;
  ShardCoordinator coord(sharded, copts);
  QueryEvaluator eval(single);
  for (const PatternTree& q : queries) {
    for (SubjectId s = 0; s < num_subjects; ++s) {
      auto sr = coord.Evaluate(q, s);
      ASSERT_TRUE(sr.ok()) << what << ": " << sr.status();
      EvalOptions eopts;
      eopts.semantics = AccessSemantics::kView;
      eopts.subject = s;
      auto rr = eval.Evaluate(q, eopts);
      ASSERT_TRUE(rr.ok()) << what;
      EXPECT_EQ(sr->answers, rr->answers)
          << what << " subject " << s << ": " << q.ToString();
    }
  }
}

struct RecoveryFixture {
  ShardFixture f;
  ShardFixtureOptions o;
  std::vector<PatternTree> queries;
  ShardedStoreOptions shopts;
};

void SetUpRecovery(uint64_t seed, RecoveryFixture* r) {
  r->o.seed = seed;
  r->o.attach_wal = true;
  r->o.num_shards = kShards;
  BuildShardFixture(r->o, &r->f);
  r->queries = MakeShardQueries(r->f.doc, seed + 7, 3);
  r->shopts.num_shards = kShards;
  NokStoreOptions sopts;
  sopts.max_records_per_page = r->o.max_records_per_page;
  r->shopts.nok = sopts;
  r->shopts.attach_wal = true;
}

TEST(ShardRecoveryTest, CrashWithoutCheckpointReplaysAllLogs) {
  RecoveryFixture r;
  SetUpRecovery(51, &r);
  ApplyUpdates(r.f.sharded.get(), r.f.single.get());
  const uint64_t lsn = r.f.sharded->applied_lsn();
  ASSERT_GT(lsn, 0u);

  // Crash: nothing persisted since the initial build — every update lives
  // only in its owner's log.
  r.f.sharded.reset();
  std::unique_ptr<ShardedStore> reopened;
  ShardedStore::RecoveryStats stats;
  Status st = ShardedStore::Open(r.shopts, r.f.files->provider(), &reopened,
                                 &stats);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(stats.recovered_lsn, lsn);
  EXPECT_GT(stats.records_in_logs, 0u);
  // Every record was missing from all peers' checkpoints, so it was applied
  // to all of them.
  EXPECT_EQ(stats.records_applied, stats.records_in_logs * kShards);
  EXPECT_EQ(reopened->applied_lsn(), lsn);
  ExpectMatchesSingle(reopened.get(), r.f.single.get(), r.queries,
                      r.o.num_subjects + 1, "crash-no-checkpoint");
}

TEST(ShardRecoveryTest, CrashInsidePhaseOneRecovers) {
  // Phase one of Checkpoint() persisted only shard 0's snapshot before the
  // crash: shard 0 recovers from its checkpoint, the peers replay from the
  // merged logs, and everyone lands on the same LSN.
  RecoveryFixture r;
  SetUpRecovery(52, &r);
  ApplyUpdates(r.f.sharded.get(), r.f.single.get());
  const uint64_t lsn = r.f.sharded->applied_lsn();
  ASSERT_TRUE(r.f.sharded->shard_store(0)->Persist().ok());

  r.f.sharded.reset();
  std::unique_ptr<ShardedStore> reopened;
  ShardedStore::RecoveryStats stats;
  ASSERT_TRUE(ShardedStore::Open(r.shopts, r.f.files->provider(), &reopened,
                                 &stats)
                  .ok());
  EXPECT_EQ(stats.recovered_lsn, lsn);
  // Shard 0's checkpoint already covers its records, so strictly fewer than
  // records x shards applications were needed.
  EXPECT_LT(stats.records_applied, stats.records_in_logs * kShards);
  EXPECT_EQ(reopened->applied_lsn(), lsn);
  ExpectMatchesSingle(reopened.get(), r.f.single.get(), r.queries,
                      r.o.num_subjects + 1, "crash-phase-one");
}

TEST(ShardRecoveryTest, CrashInsidePhaseTwoRecovers) {
  // All shards persisted (phase one complete), but only shard 0's log was
  // truncated before the crash. The stale records remaining in the other
  // logs are at or below every checkpoint's LSN and must be skipped, not
  // reapplied.
  RecoveryFixture r;
  SetUpRecovery(53, &r);
  ApplyUpdates(r.f.sharded.get(), r.f.single.get());
  const uint64_t lsn = r.f.sharded->applied_lsn();
  ASSERT_TRUE(r.f.sharded->Persist().ok());
  ASSERT_TRUE(r.f.sharded->shard_store(0)->TruncateWal().ok());

  r.f.sharded.reset();
  std::unique_ptr<ShardedStore> reopened;
  ShardedStore::RecoveryStats stats;
  ASSERT_TRUE(ShardedStore::Open(r.shopts, r.f.files->provider(), &reopened,
                                 &stats)
                  .ok());
  EXPECT_EQ(stats.recovered_lsn, lsn);
  EXPECT_EQ(stats.records_applied, 0u) << "checkpointed records reapplied";
  EXPECT_EQ(reopened->applied_lsn(), lsn);
  ExpectMatchesSingle(reopened.get(), r.f.single.get(), r.queries,
                      r.o.num_subjects + 1, "crash-phase-two");
}

TEST(ShardRecoveryTest, RecoveredStoreAcceptsNewUpdates) {
  // LSNs must keep ascending across the crash: a post-recovery update may
  // not collide with a replayed LSN, and a second crash must recover both
  // generations.
  RecoveryFixture r;
  SetUpRecovery(54, &r);
  ApplyUpdates(r.f.sharded.get(), r.f.single.get());
  const uint64_t lsn1 = r.f.sharded->applied_lsn();

  r.f.sharded.reset();
  std::unique_ptr<ShardedStore> reopened;
  ASSERT_TRUE(
      ShardedStore::Open(r.shopts, r.f.files->provider(), &reopened, nullptr)
          .ok());

  const NodeId n = reopened->num_nodes();
  ASSERT_TRUE(reopened->SetNodeAccess(n / 3, 0, false).ok());
  ASSERT_TRUE(r.f.single->SetNodeAccess(n / 3, 0, false).ok());
  EXPECT_GT(reopened->applied_lsn(), lsn1);
  const uint64_t lsn2 = reopened->applied_lsn();

  reopened.reset();
  std::unique_ptr<ShardedStore> again;
  ShardedStore::RecoveryStats stats;
  ASSERT_TRUE(
      ShardedStore::Open(r.shopts, r.f.files->provider(), &again, &stats)
          .ok());
  EXPECT_EQ(stats.recovered_lsn, lsn2);
  ExpectMatchesSingle(again.get(), r.f.single.get(), r.queries,
                      r.o.num_subjects + 1, "second-generation");
}

}  // namespace
}  // namespace secxml
