// Per-shard fault isolation: an I/O fault injected into one shard's data
// file must fail only the queries whose scatter actually read that shard —
// root-anchored queries with no candidates there sail through with answers
// identical to the single store, the batch surfaces the failure through
// first_error, and clearing the fault restores full service (reads never
// poison the store).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "query/evaluator.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "serve/shard_coordinator.h"
#include "serve/sharded_store.h"
#include "shard_test_util.h"
#include "storage/fault_file.h"

namespace secxml {
namespace {

constexpr size_t kShards = 4;
constexpr size_t kFaultyShard = 2;

struct FaultFixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile single_file;
  std::unique_ptr<SecureStore> single;
  std::vector<std::unique_ptr<MemPagedFile>> data;
  std::unique_ptr<FaultInjectingPagedFile> faulty;
  std::unique_ptr<ShardedStore> sharded;
};

void BuildFaultFixture(uint64_t seed, FaultFixture* f) {
  ShardFixtureOptions o;
  o.seed = seed;
  // Reuse the shared generator for doc/ACL, then rebuild by hand so shard
  // kFaultyShard's data file goes through the fault decorator.
  ShardFixture base;
  BuildShardFixture(o, &base);
  f->doc = std::move(base.doc);
  f->labeling = std::move(base.labeling);

  NokStoreOptions sopts;
  sopts.max_records_per_page = o.max_records_per_page;
  ASSERT_TRUE(SecureStore::Build(f->doc, f->labeling, &f->single_file, sopts,
                                 &f->single)
                  .ok());
  for (size_t s = 0; s < kShards; ++s) {
    f->data.push_back(std::make_unique<MemPagedFile>());
  }
  // Fault-free while the replicas build; tests arm faults afterwards.
  f->faulty = std::make_unique<FaultInjectingPagedFile>(
      f->data[kFaultyShard].get(), FaultOptions{});
  ShardedStoreOptions shopts;
  shopts.num_shards = kShards;
  shopts.nok = sopts;
  shopts.attach_wal = false;
  auto provider = [f](size_t s) -> Result<ShardFiles> {
    ShardFiles files;
    files.data = s == kFaultyShard
                     ? static_cast<PagedFile*>(f->faulty.get())
                     : static_cast<PagedFile*>(f->data[s].get());
    return files;
  };
  Status st = ShardedStore::Build(f->doc, f->labeling, shopts, provider,
                                  &f->sharded);
  ASSERT_TRUE(st.ok()) << st;
}

void ArmReadFaults(FaultFixture* f) {
  // Force physical reads on the faulty shard, then make every one fail.
  ASSERT_TRUE(f->sharded->shard_store(kFaultyShard)
                  ->nok()
                  ->buffer_pool()
                  ->EvictAll()
                  .ok());
  FaultOptions fopts;
  fopts.read_fault_prob = 1.0;
  fopts.persistent = true;
  f->faulty->SetOptions(fopts);
}

void DisarmFaults(FaultFixture* f) {
  f->faulty->SetOptions(FaultOptions{});
  f->faulty->ClearPageFaults();
}

TEST(ShardFaultTest, OneShardsFaultFailsOnlyTouchingJobs) {
  FaultFixture f;
  BuildFaultFixture(61, &f);
  PatternTree rooted, wild;
  ASSERT_TRUE(ParseXPath("/site", &rooted).ok());
  // `//*` makes every node in each shard's window a candidate, so the wild
  // jobs are guaranteed to fetch records from the faulty shard (a tag query
  // could have all its postings land in other shards' windows).
  ASSERT_TRUE(ParseXPath("//*", &wild).ok());

  // Interleave jobs that never scan the faulty shard (the root candidate,
  // node 0, is shard 0's) with jobs that must read it.
  std::vector<QueryJob> jobs;
  for (SubjectId s = 0; s < 6; ++s) {
    jobs.push_back({s, rooted});
    jobs.push_back({s, wild});
  }

  ArmReadFaults(&f);
  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kBinding;
  ShardCoordinator coord(f.sharded.get(), copts);
  BatchResult batch = coord.Run(jobs);

  QueryDriverOptions dopts;
  dopts.semantics = AccessSemantics::kBinding;
  QueryDriver driver(f.single.get(), dopts);

  ASSERT_EQ(batch.outcomes.size(), jobs.size());
  size_t failed = 0;
  for (size_t i = 0; i < jobs.size(); ++i) {
    const bool is_wild = (i % 2) == 1;
    if (is_wild) {
      EXPECT_FALSE(batch.outcomes[i].status.ok()) << "job " << i;
      EXPECT_EQ(batch.outcomes[i].status.code(), StatusCode::kIOError)
          << batch.outcomes[i].status;
      ++failed;
    } else {
      ASSERT_TRUE(batch.outcomes[i].status.ok())
          << "job " << i << ": " << batch.outcomes[i].status;
      BatchResult want = driver.Run({jobs[i]});
      ASSERT_TRUE(want.outcomes[0].status.ok());
      EXPECT_EQ(batch.outcomes[i].result.answers,
                want.outcomes[0].result.answers)
          << "job " << i;
    }
  }
  EXPECT_EQ(batch.stats.failed, failed);
  ASSERT_GT(failed, 0u);
  EXPECT_EQ(batch.stats.first_error.code(), StatusCode::kIOError);
  EXPECT_GT(f.faulty->stats().injected_reads, 0u);
}

TEST(ShardFaultTest, SingleEvaluateSurfacesTheShardsError) {
  FaultFixture f;
  BuildFaultFixture(62, &f);
  PatternTree wild;
  ASSERT_TRUE(ParseXPath("//*", &wild).ok());
  ArmReadFaults(&f);

  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kBinding;
  ShardCoordinator coord(f.sharded.get(), copts);
  auto r = coord.Evaluate(wild, 0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ShardFaultTest, ServiceRecoversOnceTheFaultClears) {
  FaultFixture f;
  BuildFaultFixture(63, &f);
  std::vector<PatternTree> queries = MakeShardQueries(f.doc, 63, 3);
  ArmReadFaults(&f);

  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kView;
  ShardCoordinator coord(f.sharded.get(), copts);
  // At probability 1.0 with evicted pools, at least one of these queries
  // must have hit the faulty shard.
  size_t failures = 0;
  for (const PatternTree& q : queries) {
    if (!coord.Evaluate(q, 0).ok()) ++failures;
  }
  ASSERT_GT(failures, 0u);

  DisarmFaults(&f);
  QueryEvaluator eval(f.single.get());
  for (const PatternTree& q : queries) {
    for (SubjectId s = 0; s < 4; ++s) {
      auto sr = coord.Evaluate(q, s);
      ASSERT_TRUE(sr.ok()) << sr.status();
      EvalOptions eopts;
      eopts.semantics = AccessSemantics::kView;
      eopts.subject = s;
      auto rr = eval.Evaluate(q, eopts);
      ASSERT_TRUE(rr.ok());
      EXPECT_EQ(sr->answers, rr->answers)
          << "post-recovery, subject " << s << ": " << q.ToString();
    }
  }
}

}  // namespace
}  // namespace secxml
