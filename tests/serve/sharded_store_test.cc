// ShardedStore replication tests: every mutator on the sharded surface must
// leave all N replicas logically identical (same answers, same applied LSN),
// route its WAL record to exactly one owner log, and keep the coordinator's
// scatter-gather differential against a single store receiving the same
// update sequence.

#include "serve/sharded_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/accessibility_map.h"
#include "query/evaluator.h"
#include "serve/shard_coordinator.h"
#include "shard_test_util.h"
#include "xml/xml_parser.h"

namespace secxml {
namespace {

// Differential check after each update: 4-shard scatter answers equal the
// single store's for every subject and query, and every replica sits at the
// same applied LSN.
void CheckMirrors(ShardFixture* f, const std::vector<PatternTree>& queries,
                  size_t num_subjects, const char* what) {
  for (size_t s = 0; s < f->sharded->num_shards(); ++s) {
    EXPECT_EQ(f->sharded->shard_store(s)->applied_lsn(),
              f->sharded->applied_lsn())
        << what << ": shard " << s << " diverged";
  }
  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kView;
  ShardCoordinator coord(f->sharded.get(), copts);
  QueryEvaluator eval(f->single.get());
  for (const PatternTree& q : queries) {
    for (SubjectId s = 0; s < num_subjects; ++s) {
      auto sr = coord.Evaluate(q, s);
      ASSERT_TRUE(sr.ok()) << what << ": " << sr.status();
      EvalOptions eopts;
      eopts.semantics = AccessSemantics::kView;
      eopts.subject = s;
      auto rr = eval.Evaluate(q, eopts);
      ASSERT_TRUE(rr.ok()) << what;
      EXPECT_EQ(sr->answers, rr->answers)
          << what << " subject " << s << ": " << q.ToString();
    }
  }
}

Document MakeFragment() {
  Document frag;
  EXPECT_TRUE(
      ParseXml("<patchnote><line>a</line><line>b</line></patchnote>", &frag)
          .ok());
  return frag;
}

TEST(ShardedStoreTest, UpdatesReplicateAcrossShards) {
  ShardFixtureOptions o;
  o.seed = 3;
  o.attach_wal = true;
  ShardFixture f;
  BuildShardFixture(o, &f);
  std::vector<PatternTree> queries = MakeShardQueries(f.doc, 3, 3);
  size_t num_subjects = o.num_subjects;
  const NodeId n = f.sharded->num_nodes();

  // An ACL range flip spanning a shard boundary (owned by the shard of its
  // first node, visible everywhere).
  const NodeId b0 = f.sharded->shard_map().range(0).end_node;
  ASSERT_TRUE(f.single->SetRangeAccess(b0 - 5, b0 + 5, 1, false).ok());
  ASSERT_TRUE(f.sharded->SetRangeAccess(b0 - 5, b0 + 5, 1, false).ok());
  CheckMirrors(&f, queries, num_subjects, "range-acl");

  // A subtree flip rooted mid-document.
  ASSERT_TRUE(f.single->SetSubtreeAccess(n / 2, 2, true).ok());
  ASSERT_TRUE(f.sharded->SetSubtreeAccess(n / 2, 2, true).ok());
  CheckMirrors(&f, queries, num_subjects, "subtree-acl");

  // Subject management (codebook-wide, owned by shard 0).
  auto sa = f.single->AddSubject(true);
  auto ga = f.sharded->AddSubject(true);
  ASSERT_TRUE(sa.ok() && ga.ok());
  EXPECT_EQ(*sa, *ga);
  ++num_subjects;
  auto sl = f.single->AddSubjectLike(0);
  auto gl = f.sharded->AddSubjectLike(0);
  ASSERT_TRUE(sl.ok() && gl.ok());
  EXPECT_EQ(*sl, *gl);
  ++num_subjects;
  CheckMirrors(&f, queries, num_subjects, "add-subjects");

  ASSERT_TRUE(
      f.single->RemoveSubject(static_cast<SubjectId>(num_subjects - 1)).ok());
  ASSERT_TRUE(
      f.sharded->RemoveSubject(static_cast<SubjectId>(num_subjects - 1)).ok());
  --num_subjects;
  CheckMirrors(&f, queries, num_subjects, "remove-subject");

  // Structural deletion, then insertion of a labeled fragment under the
  // root, then codebook compaction.
  ASSERT_TRUE(f.single->DeleteSubtree(n / 3).ok());
  ASSERT_TRUE(f.sharded->DeleteSubtree(n / 3).ok());
  CheckMirrors(&f, queries, num_subjects, "delete-subtree");

  Document frag = MakeFragment();
  DenseAccessMap fmap(static_cast<NodeId>(frag.NumNodes()), num_subjects);
  for (SubjectId s = 0; s < num_subjects; ++s) {
    fmap.SetSubtree(frag, s, 0, s % 2 == 0);
  }
  auto spos =
      f.single->InsertSubtree(0, kInvalidNode, frag, DolLabeling::Build(fmap));
  auto gpos = f.sharded->InsertSubtree(0, kInvalidNode, frag,
                                       DolLabeling::Build(fmap));
  ASSERT_TRUE(spos.ok()) << spos.status();
  ASSERT_TRUE(gpos.ok()) << gpos.status();
  EXPECT_EQ(*spos, *gpos);
  CheckMirrors(&f, queries, num_subjects, "insert-subtree");

  ASSERT_TRUE(f.single->CompactCodebook().ok());
  ASSERT_TRUE(f.sharded->CompactCodebook().ok());
  CheckMirrors(&f, queries, num_subjects, "compact");

  // The shard map still tiles [0, num_nodes) after structural churn.
  uint32_t expect = 0;
  for (size_t s = 0; s < f.sharded->num_shards(); ++s) {
    EXPECT_EQ(f.sharded->shard_map().range(s).first_node, expect);
    expect = f.sharded->shard_map().range(s).end_node;
  }
  EXPECT_EQ(expect, f.sharded->num_nodes());
}

TEST(ShardedStoreTest, RecordsLandOnlyInTheOwnersLog) {
  ShardFixtureOptions o;
  o.seed = 9;
  o.attach_wal = true;
  ShardFixture f;
  BuildShardFixture(o, &f);
  const ShardMap& map = f.sharded->shard_map();

  // One node-targeted update aimed into each shard's owned range, plus one
  // codebook-wide update (owned by shard 0 by convention).
  std::vector<size_t> expect_owner;
  for (size_t s = 0; s < 4; ++s) {
    const NodeId target = map.range(s).first_node;
    ASSERT_TRUE(f.sharded->SetNodeAccess(target, 0, false).ok());
    expect_owner.push_back(s);
  }
  auto added = f.sharded->AddSubject(false);
  ASSERT_TRUE(added.ok());
  expect_owner.push_back(0);

  // Collect (lsn -> shard log) across all logs: each LSN must appear in
  // exactly one log, the owner's, and the LSNs must be gapless up to
  // applied_lsn().
  std::map<uint64_t, size_t> lsn_log;
  uint64_t max_lsn = 0;
  for (size_t s = 0; s < 4; ++s) {
    Status st = f.sharded->shard_store(s)->wal()->Replay(
        0, [&](const WriteAheadLog::Record& r) {
          EXPECT_EQ(lsn_log.count(r.lsn), 0u)
              << "lsn " << r.lsn << " in two logs";
          lsn_log[r.lsn] = s;
          max_lsn = std::max(max_lsn, r.lsn);
          return Status::OK();
        });
    ASSERT_TRUE(st.ok());
  }
  ASSERT_EQ(lsn_log.size(), expect_owner.size());
  EXPECT_EQ(max_lsn, f.sharded->applied_lsn());
  size_t i = 0;
  for (const auto& [lsn, log] : lsn_log) {
    EXPECT_EQ(log, expect_owner[i]) << "record " << i << " (lsn " << lsn
                                    << ") landed in the wrong log";
    ++i;
  }
}

TEST(ShardedStoreTest, NoWalModeReplicatesDirectly) {
  ShardFixtureOptions o;
  o.seed = 15;
  o.attach_wal = false;
  ShardFixture f;
  BuildShardFixture(o, &f);
  std::vector<PatternTree> queries = MakeShardQueries(f.doc, 15, 3);
  const NodeId n = f.sharded->num_nodes();

  ASSERT_TRUE(f.single->SetRangeAccess(n / 4, n / 2, 0, false).ok());
  ASSERT_TRUE(f.sharded->SetRangeAccess(n / 4, n / 2, 0, false).ok());
  ASSERT_TRUE(f.single->DeleteSubtree(n / 2).ok());
  ASSERT_TRUE(f.sharded->DeleteSubtree(n / 2).ok());
  CheckMirrors(&f, queries, o.num_subjects, "no-wal");
}

TEST(ShardedStoreTest, CheckpointTruncatesEveryLog) {
  ShardFixtureOptions o;
  o.seed = 27;
  o.attach_wal = true;
  ShardFixture f;
  BuildShardFixture(o, &f);
  const NodeId n = f.sharded->num_nodes();
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(
        f.sharded->SetNodeAccess(static_cast<NodeId>(i * n / 8), 0, false)
            .ok());
  }
  const uint64_t lsn = f.sharded->applied_lsn();
  ASSERT_GT(lsn, 0u);
  ASSERT_TRUE(f.sharded->Checkpoint().ok());
  for (size_t s = 0; s < 4; ++s) {
    size_t records = 0;
    ASSERT_TRUE(f.sharded->shard_store(s)
                    ->wal()
                    ->Replay(0,
                             [&](const WriteAheadLog::Record&) {
                               ++records;
                               return Status::OK();
                             })
                    .ok());
    EXPECT_EQ(records, 0u) << "shard " << s << " log not truncated";
  }
  // Updates keep flowing after the checkpoint, with ascending LSNs.
  ASSERT_TRUE(f.sharded->SetNodeAccess(1, 0, false).ok());
  EXPECT_GT(f.sharded->applied_lsn(), lsn);
}

TEST(ShardedStoreTest, VacuumReplicatesAndRefreshesTheShardMap) {
  ShardFixtureOptions o;
  o.seed = 41;
  o.attach_wal = true;
  ShardFixture f;
  BuildShardFixture(o, &f);
  std::vector<PatternTree> queries = MakeShardQueries(f.doc, 41, 3);
  const NodeId n = f.sharded->num_nodes();

  // Churn ACLs so the vacuum has transitions to fold, mirrored on both.
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(
        f.single->SetSubtreeAccess(static_cast<NodeId>(i * n / 6), 1, false)
            .ok());
    ASSERT_TRUE(
        f.sharded->SetSubtreeAccess(static_cast<NodeId>(i * n / 6), 1, false)
            .ok());
  }
  SecureStore::VacuumOptions vopts;
  vopts.checkpoint_after = true;
  SecureStore::VacuumStats single_stats, sharded_stats;
  ASSERT_TRUE(f.single->Vacuum(vopts, &single_stats).ok());
  ASSERT_TRUE(f.sharded->Vacuum(vopts, &sharded_stats).ok());
  EXPECT_EQ(sharded_stats.pages_after, single_stats.pages_after);

  CheckMirrors(&f, queries, o.num_subjects, "vacuum");
  uint32_t expect = 0;
  for (size_t s = 0; s < f.sharded->num_shards(); ++s) {
    EXPECT_EQ(f.sharded->shard_map().range(s).first_node, expect);
    expect = f.sharded->shard_map().range(s).end_node;
  }
  EXPECT_EQ(expect, f.sharded->num_nodes());
}

}  // namespace
}  // namespace secxml
