// Scatter-gather differential tests (DESIGN.md §13): a ShardCoordinator over
// an N-shard ShardedStore must produce, for every seed, semantics, and batch
// width, answers byte-identical to the single-store evaluators — with zero
// access-only I/O per shard, a clean per-result rollup identity, and the
// document-order merge proved match by match. Cross-shard edge cases
// (boundary-spanning matches, empty shards, shards whose owned range is
// entirely inaccessible) are pinned here too.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/codebook.h"
#include "query/batch_evaluator.h"
#include "query/query_driver.h"
#include "query/xpath_parser.h"
#include "serve/shard_coordinator.h"
#include "shard_test_util.h"
#include "storage/shard_map.h"

namespace secxml {
namespace {

// Sum of the named operator's stats across a result (the sharded layout has
// one "scan" / "visibility" operator per shard where the single-store layout
// has one total).
ExecStats SumOps(const EvalResult& r, const std::string& name) {
  ExecStats sum;
  for (const OperatorStats& op : r.operators) {
    if (name == op.op) sum += op.stats;
  }
  return sum;
}

void ExpectRollupIdentity(const EvalResult& r, const std::string& what) {
  ExecStats ops = RollUp(r.operators);
  EXPECT_EQ(r.exec.nodes_scanned, ops.nodes_scanned) << what;
  EXPECT_EQ(r.exec.codes_checked, ops.codes_checked) << what;
  EXPECT_EQ(r.exec.pages_skipped, ops.pages_skipped) << what;
  EXPECT_EQ(r.exec.access_only_fetches, ops.access_only_fetches) << what;
  EXPECT_EQ(r.exec.shards_scattered, ops.shards_scattered) << what;
  EXPECT_EQ(r.exec.merge_comparisons, ops.merge_comparisons) << what;
}

TEST(ShardMapTest, PartitionTilesTheNodeSpace) {
  // 10 pages, first-node boundaries ascending; every shard count must tile
  // [0, num_nodes) with contiguous, ascending ranges.
  std::vector<uint32_t> firsts = {0, 7, 19, 20, 33, 40, 58, 77, 90, 95};
  const uint32_t num_nodes = 101;
  for (size_t shards : {1u, 2u, 3u, 4u, 8u, 16u}) {
    ShardMap map = ShardMap::Partition(firsts, num_nodes, shards);
    ASSERT_EQ(map.num_shards(), shards);
    uint32_t expect_node = 0;
    size_t expect_page = 0;
    for (size_t s = 0; s < shards; ++s) {
      const ShardRange& r = map.range(s);
      EXPECT_EQ(r.first_node, expect_node) << "shard " << s;
      EXPECT_EQ(r.first_page, expect_page) << "shard " << s;
      EXPECT_GE(r.end_node, r.first_node);
      expect_node = r.end_node;
      expect_page = r.end_page;
    }
    EXPECT_EQ(expect_node, num_nodes);
    EXPECT_EQ(expect_page, firsts.size());
    for (uint32_t n = 0; n < num_nodes; ++n) {
      size_t s = map.ShardOfNode(n);
      EXPECT_GE(n, map.range(s).first_node);
      EXPECT_LT(n, map.range(s).end_node);
    }
    for (size_t p = 0; p < firsts.size(); ++p) {
      size_t s = map.ShardOfPage(p);
      EXPECT_GE(p, map.range(s).first_page);
      EXPECT_LT(p, map.range(s).end_page);
    }
  }
}

class ShardDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardDifferentialTest, FourShardsMatchSingleStore) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ShardFixtureOptions o;
  o.seed = seed;
  ShardFixture f;
  BuildShardFixture(o, &f);
  std::vector<PatternTree> queries = MakeShardQueries(f.doc, seed, 6);

  for (AccessSemantics sem :
       {AccessSemantics::kBinding, AccessSemantics::kView}) {
    ShardCoordinatorOptions copts;
    copts.semantics = sem;
    ShardCoordinator coord(f.sharded.get(), copts);
    QueryEvaluator eval(f.single.get());
    for (const PatternTree& q : queries) {
      for (SubjectId s = 0; s < o.num_subjects; ++s) {
        auto sr = coord.Evaluate(q, s);
        ASSERT_TRUE(sr.ok()) << sr.status();
        EvalOptions eopts;
        eopts.semantics = sem;
        eopts.subject = s;
        auto rr = eval.Evaluate(q, eopts);
        ASSERT_TRUE(rr.ok()) << rr.status();

        EXPECT_EQ(sr->answers, rr->answers)
            << "seed " << seed << " subject " << s << " semantics "
            << static_cast<int>(sem) << ": " << q.ToString();
        EXPECT_EQ(sr->fragment_matches, rr->fragment_matches);

        // Zero extra access I/O on every shard, and the merge actually ran.
        EXPECT_EQ(sr->exec.access_only_fetches, 0u);
        EXPECT_EQ(sr->exec.shards_scattered, 4u);
        ExpectRollupIdentity(*sr, "sharded result");

        // Candidate windows tile the node space, so the per-shard scans sum
        // to exactly the single store's scan work.
        ExecStats scan_sum = SumOps(*sr, "scan");
        ExecStats single_scan = SumOps(*rr, "scan");
        EXPECT_EQ(scan_sum.nodes_scanned, single_scan.nodes_scanned)
            << "seed " << seed << " subject " << s << ": " << q.ToString();
        EXPECT_EQ(scan_sum.codes_checked, single_scan.codes_checked);
        // Every merged match was order-verified.
        EXPECT_EQ(sr->exec.merge_comparisons, sr->fragment_matches);
      }
    }
  }
}

TEST_P(ShardDifferentialTest, DriverBatchMatchesSingleStoreDriver) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  ShardFixtureOptions o;
  o.seed = seed;
  ShardFixture f;
  BuildShardFixture(o, &f);
  std::vector<PatternTree> queries = MakeShardQueries(f.doc, seed + 40, 5);

  std::vector<QueryJob> jobs;
  for (size_t i = 0; i < queries.size(); ++i) {
    for (SubjectId s = 0; s < 4; ++s) {
      jobs.push_back({s, queries[i]});
    }
  }

  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kView;
  ShardCoordinator coord(f.sharded.get(), copts);
  BatchResult got = coord.Run(jobs);

  QueryDriverOptions dopts;
  dopts.semantics = AccessSemantics::kView;
  QueryDriver driver(f.single.get(), dopts);
  BatchResult want = driver.Run(jobs);

  ASSERT_EQ(got.outcomes.size(), want.outcomes.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(got.outcomes[i].status.ok()) << got.outcomes[i].status;
    ASSERT_TRUE(want.outcomes[i].status.ok());
    EXPECT_EQ(got.outcomes[i].result.answers, want.outcomes[i].result.answers)
        << "job " << i;
  }
  EXPECT_EQ(got.stats.failed, 0u);
  EXPECT_EQ(got.stats.exec.access_only_fetches, 0u);
  EXPECT_EQ(got.stats.exec.shards_scattered, 4u * jobs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Batch widths across the mask-word boundaries: 1 (degenerate), 64 (one
// word), 512 (the full wide mask). Per-subject answers from the scattered
// batch pipeline must equal BatchEvaluator's (itself pinned to the
// per-subject evaluator), across eight seeds and both secure semantics.
class ShardBatchWidthTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ShardBatchWidthTest, ScatteredBatchMatchesSingleStoreBatch) {
  const size_t width = GetParam();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ShardFixtureOptions o;
    o.seed = seed * 13 + width;
    o.num_subjects = width;
    o.num_profiles = std::max<size_t>(1, width / 2);
    o.target_nodes = width >= 512 ? 900 : 2000;
    ShardFixture f;
    BuildShardFixture(o, &f);
    std::vector<SubjectId> subjects;
    for (SubjectId s = 0; s < width; ++s) subjects.push_back(s);
    std::vector<PatternTree> queries =
        MakeShardQueries(f.doc, o.seed, width >= 512 ? 1 : 3);

    for (AccessSemantics sem :
         {AccessSemantics::kBinding, AccessSemantics::kView}) {
      ShardCoordinatorOptions copts;
      copts.semantics = sem;
      ShardCoordinator coord(f.sharded.get(), copts);
      BatchEvaluator batch_eval(f.single.get());
      for (const PatternTree& q : queries) {
        auto sb = coord.EvaluateForSubjects(q, subjects);
        ASSERT_TRUE(sb.ok()) << sb.status();
        EvalOptions eopts;
        eopts.semantics = sem;
        auto wb = batch_eval.Evaluate(q, subjects, eopts);
        ASSERT_TRUE(wb.ok()) << wb.status();

        ASSERT_EQ(sb->classes.size(), wb->classes.size());
        for (size_t i = 0; i < subjects.size(); ++i) {
          EXPECT_EQ(sb->class_of[i], wb->class_of[i]);
          EXPECT_EQ(sb->ResultFor(i).answers, wb->ResultFor(i).answers)
              << "seed " << seed << " width " << width << " subject " << i
              << " semantics " << static_cast<int>(sem) << ": "
              << q.ToString();
        }
        // Batch-level accounting: zero extra I/O, the rollup-sum identity,
        // and the batch counters agreeing with the reference pipeline.
        EXPECT_EQ(sb->exec.access_only_fetches, 0u);
        EXPECT_EQ(sb->exec.subjects_batched, wb->exec.subjects_batched);
        EXPECT_EQ(sb->exec.classes_evaluated, wb->exec.classes_evaluated);
        EXPECT_EQ(sb->exec.class_dedup_hits, wb->exec.class_dedup_hits);
        ExecStats summed;
        for (const ClassEvalResult& cls : sb->classes) {
          summed += cls.result.exec;
        }
        EXPECT_EQ(sb->exec.nodes_scanned, summed.nodes_scanned);
        EXPECT_EQ(sb->exec.merge_comparisons, summed.merge_comparisons);
        EXPECT_GT(sb->exec.shards_scattered, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, ShardBatchWidthTest,
                         ::testing::Values(1, 64, 512));

TEST(ShardMergeTest, OneVsManyShardsIdentical) {
  // The 1-shard coordinator is the unscattered evaluator; every wider shard
  // count must reproduce it exactly.
  ShardFixtureOptions base;
  base.seed = 21;
  base.num_shards = 1;
  ShardFixture one;
  BuildShardFixture(base, &one);
  std::vector<PatternTree> queries = MakeShardQueries(one.doc, 21, 5);

  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kBinding;
  ShardCoordinator ref(one.sharded.get(), copts);
  for (size_t shards : {2u, 3u, 4u, 8u}) {
    ShardFixtureOptions o = base;
    o.num_shards = shards;
    ShardFixture f;
    BuildShardFixture(o, &f);
    ShardCoordinator coord(f.sharded.get(), copts);
    for (const PatternTree& q : queries) {
      for (SubjectId s = 0; s < base.num_subjects; ++s) {
        auto a = ref.Evaluate(q, s);
        auto b = coord.Evaluate(q, s);
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_EQ(a->answers, b->answers)
            << shards << " shards, subject " << s << ": " << q.ToString();
        EXPECT_EQ(a->fragment_matches, b->fragment_matches);
      }
    }
  }
}

TEST(ShardMergeTest, EmptyShardsWithMoreShardsThanPages) {
  // A tiny document at physical page capacity packs into fewer pages than
  // shards; the trailing shards own empty ranges and must contribute
  // nothing (and break nothing).
  ShardFixtureOptions o;
  o.seed = 33;
  o.num_shards = 8;
  o.target_nodes = 150;
  o.max_records_per_page = 0;  // physical maximum: very few pages
  ShardFixture f;
  BuildShardFixture(o, &f);

  size_t empties = 0;
  for (size_t s = 0; s < 8; ++s) {
    if (f.sharded->shard_map().range(s).empty()) ++empties;
  }
  ASSERT_GT(empties, 0u) << "fixture did not produce empty shards";

  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kView;
  ShardCoordinator coord(f.sharded.get(), copts);
  QueryEvaluator eval(f.single.get());
  for (const PatternTree& q : MakeShardQueries(f.doc, 33, 4)) {
    for (SubjectId s = 0; s < o.num_subjects; ++s) {
      auto sr = coord.Evaluate(q, s);
      ASSERT_TRUE(sr.ok()) << sr.status();
      EvalOptions eopts;
      eopts.semantics = AccessSemantics::kView;
      eopts.subject = s;
      auto rr = eval.Evaluate(q, eopts);
      ASSERT_TRUE(rr.ok());
      EXPECT_EQ(sr->answers, rr->answers) << q.ToString();
    }
  }
}

TEST(ShardMergeTest, BoundarySpanningMatchComesOutWhole) {
  // A root-anchored twig whose match root (node 0) belongs to shard 0 while
  // its bindings live arbitrarily deep in every other shard's range: the
  // owner's full replica must produce the whole match, identical to the
  // single store.
  ShardFixtureOptions o;
  o.seed = 5;
  ShardFixture f;
  BuildShardFixture(o, &f);
  ASSERT_LT(f.sharded->shard_map().range(0).end_node, f.sharded->num_nodes())
      << "need a real shard boundary below the root's subtree end";

  PatternTree q;
  ASSERT_TRUE(ParseXPath("/site//item", &q).ok());
  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kBinding;
  ShardCoordinator coord(f.sharded.get(), copts);
  QueryEvaluator eval(f.single.get());
  for (SubjectId s = 0; s < o.num_subjects; ++s) {
    auto sr = coord.Evaluate(q, s);
    ASSERT_TRUE(sr.ok()) << sr.status();
    EvalOptions eopts;
    eopts.semantics = AccessSemantics::kBinding;
    eopts.subject = s;
    auto rr = eval.Evaluate(q, eopts);
    ASSERT_TRUE(rr.ok());
    EXPECT_EQ(sr->answers, rr->answers) << "subject " << s;
    EXPECT_EQ(sr->fragment_matches, rr->fragment_matches);
  }
  // The root match itself exists for the all-access case and its answers
  // extend past shard 0's boundary — the span the merge had to preserve.
  auto open = coord.Evaluate(q, 0);
  ASSERT_TRUE(open.ok());
  if (!open->answers.empty()) {
    EXPECT_GT(open->answers.back(), f.sharded->shard_map().range(0).end_node);
  }
}

TEST(ShardMergeTest, AllDeadShardIsSkippedConsistently) {
  // Subject 1 can access only the first ~eighth of the document, so the
  // trailing shards' owned ranges are wholly inaccessible: page skipping
  // must kill them without extra I/O, and answers must still match the
  // single store (which skips the same pages once).
  XMarkOptions xopts;
  xopts.seed = 77;
  xopts.target_nodes = 2000;
  Document doc;
  ASSERT_TRUE(GenerateXMark(xopts, &doc).ok());
  const NodeId n = static_cast<NodeId>(doc.NumNodes());
  IntervalAccessMap map(n, 2);
  map.SetSubjectIntervals(0, {{0, n}});      // subject 0: everything
  map.SetSubjectIntervals(1, {{0, n / 8}});  // subject 1: a head slice
  ASSERT_TRUE(map.Validate().ok());
  DolLabeling labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;

  MemPagedFile single_file;
  std::unique_ptr<SecureStore> single;
  ASSERT_TRUE(
      SecureStore::Build(doc, labeling, &single_file, sopts, &single).ok());
  ShardedStoreOptions shopts;
  shopts.num_shards = 4;
  shopts.nok = sopts;
  shopts.attach_wal = false;
  ShardFileSet files(4);
  std::unique_ptr<ShardedStore> sharded;
  ASSERT_TRUE(ShardedStore::Build(doc, labeling, shopts, files.provider(),
                                  &sharded)
                  .ok());

  ShardCoordinatorOptions copts;
  copts.semantics = AccessSemantics::kBinding;
  ShardCoordinator coord(sharded.get(), copts);
  QueryEvaluator eval(single.get());
  for (const PatternTree& q : MakeShardQueries(doc, 78, 4)) {
    for (SubjectId s : {SubjectId{0}, SubjectId{1}}) {
      auto sr = coord.Evaluate(q, s);
      ASSERT_TRUE(sr.ok()) << sr.status();
      EvalOptions eopts;
      eopts.semantics = AccessSemantics::kBinding;
      eopts.subject = s;
      auto rr = eval.Evaluate(q, eopts);
      ASSERT_TRUE(rr.ok());
      EXPECT_EQ(sr->answers, rr->answers)
          << "subject " << s << ": " << q.ToString();
      EXPECT_EQ(sr->exec.access_only_fetches, 0u);
      // A page on a shard boundary can be counted skipped by both of its
      // neighbors, so the scattered count dominates the single store's.
      EXPECT_GE(sr->exec.pages_skipped, rr->exec.pages_skipped);
    }
  }
}

}  // namespace
}  // namespace secxml
