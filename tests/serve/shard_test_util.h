#ifndef SECXML_TESTS_SERVE_SHARD_TEST_UTIL_H_
#define SECXML_TESTS_SERVE_SHARD_TEST_UTIL_H_

// Shared fixture for the sharded-serving suites: one XMark document with a
// synthetic multi-subject ACL, built twice — as a single reference
// SecureStore and as an N-shard ShardedStore over a ShardFileSet — so every
// test is a differential against the single-store evaluators.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "query/evaluator.h"
#include "query/pattern_tree.h"
#include "serve/shard_coordinator.h"
#include "serve/sharded_store.h"
#include "storage/paged_file.h"
#include "workload/query_generator.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {

struct ShardFixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile single_file;
  std::unique_ptr<SecureStore> single;
  std::unique_ptr<ShardFileSet> files;
  std::unique_ptr<ShardedStore> sharded;
};

struct ShardFixtureOptions {
  uint64_t seed = 1;
  size_t num_subjects = 12;
  /// < num_subjects makes column-equal subjects (class dedup actually
  /// collapses something).
  size_t num_profiles = 5;
  size_t num_shards = 4;
  bool attach_wal = false;
  size_t target_nodes = 2000;
  uint32_t max_records_per_page = 32;
};

inline void BuildShardFixture(const ShardFixtureOptions& o, ShardFixture* f) {
  XMarkOptions xopts;
  xopts.seed = o.seed + 300;
  xopts.target_nodes = o.target_nodes;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  IntervalAccessMap map(static_cast<NodeId>(f->doc.NumNodes()),
                        o.num_subjects);
  for (SubjectId s = 0; s < o.num_subjects; ++s) {
    SyntheticAclOptions aopts;
    aopts.seed = o.seed * 100 + s % o.num_profiles;
    aopts.accessibility_ratio = 0.6;
    map.SetSubjectIntervals(s, GenerateSyntheticAcl(f->doc, aopts));
  }
  ASSERT_TRUE(map.Validate().ok());
  f->labeling = DolLabeling::BuildFromEvents(map.num_nodes(), map.InitialAcl(),
                                             map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = o.max_records_per_page;
  ASSERT_TRUE(
      SecureStore::Build(f->doc, f->labeling, &f->single_file, sopts,
                         &f->single)
          .ok());

  ShardedStoreOptions shopts;
  shopts.num_shards = o.num_shards;
  shopts.nok = sopts;
  shopts.attach_wal = o.attach_wal;
  f->files = std::make_unique<ShardFileSet>(o.num_shards);
  Status st = ShardedStore::Build(f->doc, f->labeling, shopts,
                                  f->files->provider(), &f->sharded);
  ASSERT_TRUE(st.ok()) << st;
}

inline std::vector<PatternTree> MakeShardQueries(const Document& doc,
                                                 uint64_t seed, int count) {
  std::vector<PatternTree> queries;
  for (int i = 0; i < count; ++i) {
    QueryGenOptions qopts;
    qopts.seed = seed * 5000 + static_cast<uint64_t>(i);
    qopts.max_nodes = 2 + i % 5;
    queries.push_back(GenerateTwigQuery(doc, qopts));
  }
  return queries;
}

}  // namespace secxml

#endif  // SECXML_TESTS_SERVE_SHARD_TEST_UTIL_H_
