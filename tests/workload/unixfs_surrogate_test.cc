#include "workload/unixfs_surrogate.h"

#include <gtest/gtest.h>

#include "core/dol_labeling.h"

namespace secxml {
namespace {

UnixFsOptions SmallOptions() {
  UnixFsOptions opts;
  opts.target_nodes = 30000;
  opts.num_users = 40;
  opts.num_groups = 12;
  opts.seed = 5;
  return opts;
}

TEST(UnixFsSurrogateTest, GeneratesRequestedShape) {
  UnixFsOptions opts = SmallOptions();
  UnixFsWorkload w;
  ASSERT_TRUE(GenerateUnixFs(opts, &w).ok());
  EXPECT_EQ(w.num_users, 40u);
  EXPECT_EQ(w.num_groups, 12u);
  EXPECT_GT(w.doc.NumNodes(), 25000u);
  ASSERT_NE(w.read_map, nullptr);
  ASSERT_TRUE(w.read_map->Validate().ok());
  EXPECT_EQ(w.read_map->num_nodes(), w.doc.NumNodes());
  EXPECT_EQ(w.read_map->num_subjects(), 52u);
}

TEST(UnixFsSurrogateTest, PaperDefaultsMatchSubjectCounts) {
  UnixFsOptions opts;
  EXPECT_EQ(opts.num_users, 182u);
  EXPECT_EQ(opts.num_groups, 65u);
  EXPECT_EQ(opts.num_users + opts.num_groups, 247u);
}

TEST(UnixFsSurrogateTest, DeterministicInSeed) {
  UnixFsOptions opts = SmallOptions();
  UnixFsWorkload a, b;
  ASSERT_TRUE(GenerateUnixFs(opts, &a).ok());
  ASSERT_TRUE(GenerateUnixFs(opts, &b).ok());
  ASSERT_EQ(a.doc.NumNodes(), b.doc.NumNodes());
  ASSERT_EQ(a.read_map->num_runs(), b.read_map->num_runs());
  for (size_t i = 0; i < a.read_map->num_runs(); i += 7) {
    ASSERT_EQ(a.read_map->run_start(i), b.read_map->run_start(i));
    ASSERT_EQ(a.read_map->run_acl(i), b.read_map->run_acl(i));
  }
}

TEST(UnixFsSurrogateTest, TopLevelLayout) {
  UnixFsWorkload w;
  ASSERT_TRUE(GenerateUnixFs(SmallOptions(), &w).ok());
  EXPECT_EQ(w.doc.TagName(0), "fs");
  std::vector<std::string> sections;
  for (NodeId c = w.doc.FirstChild(0); c != kInvalidNode;
       c = w.doc.NextSibling(c)) {
    sections.push_back(w.doc.TagName(c));
  }
  EXPECT_EQ(sections,
            (std::vector<std::string>{"etc", "usr", "var", "home", "proj"}));
}

TEST(UnixFsSurrogateTest, SystemAreaIsWorldReadable) {
  UnixFsWorkload w;
  ASSERT_TRUE(GenerateUnixFs(SmallOptions(), &w).ok());
  // /usr is generated without private perturbations: everything readable
  // by every subject.
  NodeId usr = kInvalidNode;
  for (NodeId c = w.doc.FirstChild(0); c != kInvalidNode;
       c = w.doc.NextSibling(c)) {
    if (w.doc.TagName(c) == "usr") usr = c;
  }
  ASSERT_NE(usr, kInvalidNode);
  for (NodeId x = usr; x < w.doc.SubtreeEnd(usr); x += 53) {
    for (SubjectId s = 0; s < w.num_subjects(); s += 9) {
      ASSERT_TRUE(w.read_map->Accessible(s, x)) << x << " " << s;
    }
  }
}

TEST(UnixFsSurrogateTest, RunsHaveStrongLocality) {
  UnixFsWorkload w;
  ASSERT_TRUE(GenerateUnixFs(SmallOptions(), &w).ok());
  // Ownership is subtree-granular: run count is far below node count.
  EXPECT_LT(w.read_map->num_runs(), w.doc.NumNodes() / 10);
  EXPECT_GT(w.read_map->num_runs(), 50u);
}

TEST(UnixFsSurrogateTest, GroupMembersShareProjectAccess) {
  UnixFsWorkload w;
  ASSERT_TRUE(GenerateUnixFs(SmallOptions(), &w).ok());
  // For every run that is group-readable but not world-readable, the group
  // subject and at least one user can read it, and correlation holds: users
  // reading it form exactly the group membership (plus the owner).
  size_t group_runs = 0;
  for (size_t r = 0; r < w.read_map->num_runs(); ++r) {
    const BitVector& acl = w.read_map->run_acl(r);
    size_t readers = acl.Count();
    if (readers == 0 || readers == acl.size()) continue;
    ++group_runs;
  }
  EXPECT_GT(group_runs, 10u);
}

TEST(UnixFsSurrogateTest, DolFromRunsMatchesPerNodeChecks) {
  UnixFsWorkload w;
  ASSERT_TRUE(GenerateUnixFs(SmallOptions(), &w).ok());
  DolLabeling dol = DolLabeling::BuildFromRuns(*w.read_map);
  ASSERT_TRUE(dol.CheckInvariants().ok());
  for (NodeId x = 0; x < w.doc.NumNodes(); x += 31) {
    for (SubjectId s = 0; s < w.num_subjects(); s += 5) {
      ASSERT_EQ(dol.Accessible(s, x), w.read_map->Accessible(s, x))
          << x << " " << s;
    }
  }
  EXPECT_EQ(dol.num_transitions(), w.read_map->num_runs());
}

TEST(UnixFsSurrogateTest, ProjectSubjectsSubsetting) {
  UnixFsWorkload w;
  ASSERT_TRUE(GenerateUnixFs(SmallOptions(), &w).ok());
  std::vector<SubjectId> subset = {0, 5, 41};  // two users + a group
  RunAccessMap projected = w.read_map->ProjectSubjects(subset);
  ASSERT_TRUE(projected.Validate().ok());
  EXPECT_LE(projected.num_runs(), w.read_map->num_runs());
  for (NodeId x = 0; x < w.doc.NumNodes(); x += 47) {
    for (size_t j = 0; j < subset.size(); ++j) {
      ASSERT_EQ(projected.Accessible(static_cast<SubjectId>(j), x),
                w.read_map->Accessible(subset[j], x));
    }
  }
}

TEST(UnixFsSurrogateTest, RejectsBadOptions) {
  UnixFsOptions opts = SmallOptions();
  opts.num_users = 0;
  UnixFsWorkload w;
  EXPECT_FALSE(GenerateUnixFs(opts, &w).ok());
}

}  // namespace
}  // namespace secxml
