#include "workload/synthetic_acl.h"

#include <gtest/gtest.h>

#include "core/dol_labeling.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

Document XMarkDoc(uint32_t nodes = 10000) {
  XMarkOptions opts;
  opts.target_nodes = nodes;
  Document doc;
  EXPECT_TRUE(GenerateXMark(opts, &doc).ok());
  return doc;
}

double AccessibleFraction(const std::vector<NodeInterval>& ivs, size_t n) {
  size_t covered = 0;
  for (const NodeInterval& iv : ivs) covered += iv.end - iv.begin;
  return static_cast<double>(covered) / static_cast<double>(n);
}

TEST(SyntheticAclTest, DeterministicInSeed) {
  Document doc = XMarkDoc();
  SyntheticAclOptions opts;
  opts.seed = 5;
  auto a = GenerateSyntheticAcl(doc, opts);
  auto b = GenerateSyntheticAcl(doc, opts);
  EXPECT_EQ(a, b);
  opts.seed = 6;
  EXPECT_NE(GenerateSyntheticAcl(doc, opts), a);
}

TEST(SyntheticAclTest, AccessibilityRatioControlsCoverage) {
  Document doc = XMarkDoc();
  SyntheticAclOptions opts;
  opts.propagation_ratio = 0.03;
  double prev = -1;
  for (double ratio : {0.1, 0.5, 0.9}) {
    opts.accessibility_ratio = ratio;
    // Average over several seeds to smooth the randomness.
    double total = 0;
    for (uint64_t s = 1; s <= 5; ++s) {
      opts.seed = s;
      total += AccessibleFraction(GenerateSyntheticAcl(doc, opts),
                                  doc.NumNodes());
    }
    double avg = total / 5;
    EXPECT_GT(avg, prev) << ratio;
    // Coverage loosely tracks the accessibility ratio.
    EXPECT_NEAR(avg, ratio, 0.30) << ratio;
    prev = avg;
  }
}

TEST(SyntheticAclTest, PropagationRatioControlsTransitions) {
  Document doc = XMarkDoc();
  SyntheticAclOptions opts;
  opts.accessibility_ratio = 0.5;
  size_t prev = 0;
  for (double prop : {0.01, 0.03, 0.08}) {
    opts.propagation_ratio = prop;
    opts.seed = 3;
    IntervalAccessMap map = GenerateSyntheticAclMap(doc, 1, opts);
    DolLabeling dol = DolLabeling::BuildFromEvents(
        static_cast<NodeId>(doc.NumNodes()), map.InitialAcl(),
        map.CollectEvents());
    EXPECT_GT(dol.num_transitions(), prev) << prop;
    prev = dol.num_transitions();
  }
}

TEST(SyntheticAclTest, HorizontalLocalityAlignsSiblings) {
  // The defining property (paper Section 5): direct siblings of a seed get
  // the seed's accessibility unless they are seeds themselves. We verify it
  // statistically: with horizontal locality on, sibling pairs agree far
  // more often than the labeled baseline.
  Document doc = XMarkDoc(20000);
  auto sibling_agreement = [&doc](bool horizontal) {
    SyntheticAclOptions opts;
    opts.propagation_ratio = 0.05;
    opts.accessibility_ratio = 0.5;
    opts.seed = 9;
    opts.horizontal_locality = horizontal;
    auto ivs = GenerateSyntheticAcl(doc, opts);
    std::vector<bool> acc(doc.NumNodes(), false);
    for (const NodeInterval& iv : ivs) {
      for (NodeId x = iv.begin; x < iv.end; ++x) acc[x] = true;
    }
    size_t agree = 0, pairs = 0;
    for (NodeId n = 0; n < doc.NumNodes(); ++n) {
      NodeId sib = doc.NextSibling(n);
      if (sib == kInvalidNode) continue;
      ++pairs;
      agree += acc[n] == acc[sib];
    }
    return static_cast<double>(agree) / static_cast<double>(pairs);
  };
  double with = sibling_agreement(true);
  EXPECT_GT(with, 0.9);
}

TEST(SyntheticAclTest, MapIsValidAndSubjectsIndependent) {
  Document doc = XMarkDoc();
  SyntheticAclOptions opts;
  IntervalAccessMap map = GenerateSyntheticAclMap(doc, 8, opts);
  ASSERT_TRUE(map.Validate().ok());
  // Subjects differ from each other.
  int distinct = 0;
  for (SubjectId s = 1; s < 8; ++s) {
    if (map.SubjectIntervals(s) != map.SubjectIntervals(0)) ++distinct;
  }
  EXPECT_GT(distinct, 4);
}

TEST(SyntheticAclTest, RootSeedEnsuresFullLabeling) {
  // With propagation ratio 0 only the root seed exists, so the whole
  // document is uniformly labeled.
  Document doc = XMarkDoc(2000);
  SyntheticAclOptions opts;
  opts.propagation_ratio = 0.0;
  opts.accessibility_ratio = 1.0;
  auto ivs = GenerateSyntheticAcl(doc, opts);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].begin, 0u);
  EXPECT_EQ(ivs[0].end, doc.NumNodes());
}

}  // namespace
}  // namespace secxml
