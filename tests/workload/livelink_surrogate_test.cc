#include "workload/livelink_surrogate.h"

#include <gtest/gtest.h>

#include "core/dol_labeling.h"

namespace secxml {
namespace {

LiveLinkOptions SmallOptions() {
  LiveLinkOptions opts;
  opts.target_nodes = 20000;
  opts.num_departments = 6;
  opts.teams_per_department = 4;
  opts.num_users = 500;
  opts.num_modes = 10;
  opts.seed = 3;
  return opts;
}

TEST(LiveLinkSurrogateTest, GeneratesRequestedShape) {
  LiveLinkOptions opts = SmallOptions();
  LiveLinkWorkload w;
  ASSERT_TRUE(GenerateLiveLink(opts, &w).ok());
  EXPECT_EQ(w.num_users, 500u);
  EXPECT_EQ(w.num_groups, 2u + 6u + 24u);
  EXPECT_EQ(w.modes.size(), 10u);
  EXPECT_GT(w.doc.NumNodes(), 15000u);
  EXPECT_LT(w.doc.NumNodes(), 30000u);
  for (const auto& mode : w.modes) {
    ASSERT_TRUE(mode.Validate().ok());
    EXPECT_EQ(mode.num_subjects(), w.num_subjects());
    EXPECT_EQ(mode.num_nodes(), w.doc.NumNodes());
  }
}

TEST(LiveLinkSurrogateTest, DefaultSubjectCountMatchesPaper) {
  LiveLinkOptions opts;  // defaults
  // 8469 users + 2 + 24 + 144 groups = 8639 subjects as in the paper.
  EXPECT_EQ(opts.num_users + 2 + opts.num_departments +
                opts.num_departments * opts.teams_per_department,
            8639u);
}

TEST(LiveLinkSurrogateTest, DepthStatisticsResembleLiveLink) {
  LiveLinkOptions opts = SmallOptions();
  opts.target_nodes = 60000;
  LiveLinkWorkload w;
  ASSERT_TRUE(GenerateLiveLink(opts, &w).ok());
  // Paper: average depth 7.9, maximum 19.
  EXPECT_GT(w.doc.AvgDepth(), 4.0);
  EXPECT_LT(w.doc.AvgDepth(), 11.0);
  EXPECT_LE(w.doc.MaxDepth(), 19);
  EXPECT_GE(w.doc.MaxDepth(), 8);
}

TEST(LiveLinkSurrogateTest, DeterministicInSeed) {
  LiveLinkOptions opts = SmallOptions();
  LiveLinkWorkload a, b;
  ASSERT_TRUE(GenerateLiveLink(opts, &a).ok());
  ASSERT_TRUE(GenerateLiveLink(opts, &b).ok());
  ASSERT_EQ(a.doc.NumNodes(), b.doc.NumNodes());
  for (SubjectId s = 0; s < a.num_subjects(); s += 17) {
    ASSERT_EQ(a.modes[0].SubjectIntervals(s), b.modes[0].SubjectIntervals(s));
  }
}

TEST(LiveLinkSurrogateTest, SubjectRightsAreCorrelated) {
  // The paper's key observation (Figures 5-6): the codebook grows far
  // slower than 2^subjects, and transitions grow sublinearly, because
  // subjects share group-derived rights.
  LiveLinkOptions opts = SmallOptions();
  LiveLinkWorkload w;
  ASSERT_TRUE(GenerateLiveLink(opts, &w).ok());
  const IntervalAccessMap& mode0 = w.modes[0];
  NodeId n = static_cast<NodeId>(w.doc.NumNodes());
  DolLabeling all = DolLabeling::BuildFromEvents(n, mode0.InitialAcl(),
                                                 mode0.CollectEvents());
  // Codebook entries far below both node count and 2^subjects.
  EXPECT_LT(all.codebook().size(), w.doc.NumNodes() / 4);
  EXPECT_GT(all.codebook().size(), 10u);
  // Transition density well under 1 per 10 nodes (paper Section 5.1.1).
  EXPECT_LT(all.num_transitions(), w.doc.NumNodes() / 10);

  // Single-subject labelings are much smaller but not trivial.
  std::vector<SubjectId> one = {3};
  DolLabeling single = DolLabeling::BuildFromEvents(
      n, mode0.InitialAcl(&one), mode0.CollectEvents(&one));
  EXPECT_LT(single.num_transitions(), all.num_transitions());
  // Sublinear growth: all-subject transitions are far below
  // single-subject-count * num_subjects.
  EXPECT_LT(all.num_transitions(),
            single.num_transitions() * w.num_subjects() / 4);
}

TEST(LiveLinkSurrogateTest, ModesAreNested) {
  // Higher modes are restrictions: a user's delete scope is inside their
  // read scope.
  LiveLinkOptions opts = SmallOptions();
  LiveLinkWorkload w;
  ASSERT_TRUE(GenerateLiveLink(opts, &w).ok());
  int checked = 0;
  const auto& read = w.modes[0];
  const auto& del = w.modes[6];
  for (SubjectId u = 0; u < w.num_users; ++u) {
    for (const NodeInterval& iv : del.SubjectIntervals(u)) {
      for (NodeId x : {iv.begin, static_cast<NodeId>((iv.begin + iv.end) / 2),
                       static_cast<NodeId>(iv.end - 1)}) {
        EXPECT_TRUE(read.Accessible(u, x)) << u << " " << x;
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(LiveLinkSurrogateTest, ManagersSeeEverythingUsersDoNot) {
  LiveLinkOptions opts = SmallOptions();
  LiveLinkWorkload w;
  ASSERT_TRUE(GenerateLiveLink(opts, &w).ok());
  SubjectId managers = static_cast<SubjectId>(w.num_users + 1);
  const auto& mode0 = w.modes[0];
  for (NodeId x = 0; x < w.doc.NumNodes(); x += 1009) {
    EXPECT_TRUE(mode0.Accessible(managers, x));
  }
  // An ordinary user cannot see other departments' projects: coverage is
  // partial.
  size_t visible = 0, total = 0;
  for (NodeId x = 0; x < w.doc.NumNodes(); x += 101) {
    ++total;
    visible += mode0.Accessible(0, x) ? 1 : 0;
  }
  EXPECT_LT(visible, total);
  EXPECT_GT(visible, 0u);
}

TEST(LiveLinkSurrogateTest, RejectsBadOptions) {
  LiveLinkOptions opts = SmallOptions();
  LiveLinkWorkload w;
  opts.num_modes = 11;
  EXPECT_FALSE(GenerateLiveLink(opts, &w).ok());
  opts = SmallOptions();
  opts.num_departments = 0;
  EXPECT_FALSE(GenerateLiveLink(opts, &w).ok());
}

}  // namespace
}  // namespace secxml
