#include "common/bitvector.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"

namespace secxml {
namespace {

TEST(BitVectorTest, ConstructAllClear) {
  BitVector bv(70);
  EXPECT_EQ(bv.size(), 70u);
  for (size_t i = 0; i < 70; ++i) EXPECT_FALSE(bv.Get(i));
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, ConstructAllSet) {
  BitVector bv(70, true);
  for (size_t i = 0; i < 70; ++i) EXPECT_TRUE(bv.Get(i));
  EXPECT_EQ(bv.Count(), 70u);
}

TEST(BitVectorTest, SetAndGetAcrossWordBoundary) {
  BitVector bv(130);
  bv.Set(0, true);
  bv.Set(63, true);
  bv.Set(64, true);
  bv.Set(129, true);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_FALSE(bv.Get(65));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Set(63, false);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVectorTest, PushBackGrows) {
  BitVector bv;
  for (int i = 0; i < 100; ++i) bv.PushBack(i % 3 == 0);
  EXPECT_EQ(bv.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(bv.Get(i), i % 3 == 0);
}

TEST(BitVectorTest, EraseShiftsDown) {
  BitVector bv;
  // Pattern: 1 0 1 1 0
  for (bool b : {true, false, true, true, false}) bv.PushBack(b);
  bv.Erase(1);
  ASSERT_EQ(bv.size(), 4u);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(1));
  EXPECT_TRUE(bv.Get(2));
  EXPECT_FALSE(bv.Get(3));
}

TEST(BitVectorTest, EraseAcrossWordBoundary) {
  BitVector bv(130);
  bv.Set(64, true);
  bv.Set(129, true);
  bv.Erase(0);
  EXPECT_EQ(bv.size(), 129u);
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(128));
  EXPECT_EQ(bv.Count(), 2u);
}

TEST(BitVectorTest, EqualityIgnoresNothing) {
  BitVector a(65), b(65);
  EXPECT_EQ(a, b);
  a.Set(64, true);
  EXPECT_NE(a, b);
  b.Set(64, true);
  EXPECT_EQ(a, b);
  BitVector c(64);
  EXPECT_NE(a, c);  // different lengths differ
}

TEST(BitVectorTest, PaddingBitsDoNotAffectEquality) {
  // Build the same logical value two ways: direct construction vs push/erase
  // churn that could leave garbage in padding bits if unmasked.
  BitVector a(10);
  a.Set(3, true);
  BitVector b(11, true);
  b.Erase(10);
  for (size_t i = 0; i < 10; ++i) b.Set(i, i == 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(BitVectorTest, HashDistinguishesValues) {
  std::unordered_set<size_t> hashes;
  for (size_t i = 0; i < 64; ++i) {
    BitVector bv(64);
    bv.Set(i, true);
    hashes.insert(bv.Hash());
  }
  // All 64 single-bit vectors should hash distinctly (no collisions for
  // such a trivial family).
  EXPECT_EQ(hashes.size(), 64u);
}

TEST(BitVectorTest, ByteSizeRoundsUp) {
  EXPECT_EQ(BitVector(0).ByteSize(), 0u);
  EXPECT_EQ(BitVector(1).ByteSize(), 1u);
  EXPECT_EQ(BitVector(8).ByteSize(), 1u);
  EXPECT_EQ(BitVector(9).ByteSize(), 2u);
  EXPECT_EQ(BitVector(8639).ByteSize(), 1080u);  // LiveLink subject count
}

TEST(BitVectorTest, ToStringMatchesBits) {
  BitVector bv;
  for (bool b : {true, false, false, true}) bv.PushBack(b);
  EXPECT_EQ(bv.ToString(), "1001");
}

TEST(BitVectorTest, RandomizedEraseMatchesReference) {
  Rng rng(99);
  std::vector<bool> ref;
  BitVector bv;
  for (int i = 0; i < 500; ++i) {
    bool b = rng.Bernoulli(0.5);
    ref.push_back(b);
    bv.PushBack(b);
  }
  for (int round = 0; round < 200; ++round) {
    size_t i = rng.Uniform(ref.size());
    ref.erase(ref.begin() + static_cast<long>(i));
    bv.Erase(i);
    ASSERT_EQ(bv.size(), ref.size());
  }
  for (size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(bv.Get(i), ref[i]);
}

}  // namespace
}  // namespace secxml
