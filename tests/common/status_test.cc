#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"

namespace secxml {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::IOError("disk gone").message(), "disk gone");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::Corruption("bad page");
  EXPECT_EQ(s.ToString(), "Corruption: bad page");
  std::ostringstream os;
  os << s;
  EXPECT_EQ(os.str(), "Corruption: bad page");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Status FailingOperation() { return Status::IOError("boom"); }

Status Caller() {
  SECXML_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = Caller();
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status UseAssignOrReturn(int in, int* out) {
  SECXML_ASSIGN_OR_RETURN(*out, ParsePositive(in));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int v = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &v).ok());
  EXPECT_EQ(v, 5);
  EXPECT_EQ(UseAssignOrReturn(-2, &v).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 3);
}

}  // namespace
}  // namespace secxml
