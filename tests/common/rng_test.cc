#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace secxml {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differ;
  }
  EXPECT_GT(differ, 60);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(13);
  constexpr int kN = 20000;
  int hits = 0;
  for (int i = 0; i < kN; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(RngTest, ReSeedingRestartsSequence) {
  Rng rng(42);
  uint64_t first = rng.Next();
  rng.Next();
  rng.Seed(42);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, ProducesManyDistinctValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Next());
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace secxml
