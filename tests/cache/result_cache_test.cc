#include "cache/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "cache/plan_cache.h"

namespace secxml::cache {
namespace {

/// Minimal payload: a byte size for the budget plus a tag so tests can tell
/// payloads apart without depending on the query layer.
class Blob : public CacheableResult {
 public:
  explicit Blob(size_t bytes, int tag = 0) : bytes_(bytes), tag_(tag) {}
  size_t ApproxBytes() const override { return bytes_; }
  int tag() const { return tag_; }

 private:
  size_t bytes_;
  int tag_;
};

ResultKey Key(const std::string& q, uint64_t hi = 1, uint64_t lo = 2) {
  ResultKey k;
  k.column_hi = hi;
  k.column_lo = lo;
  k.query = q;
  return k;
}

ResultCache::Entry MakeEntry(uint64_t epoch, uint64_t begin, uint64_t end,
                             bool acl_independent = false,
                             size_t bytes = 16, int tag = 0) {
  ResultCache::Entry e;
  e.payload = std::make_shared<Blob>(bytes, tag);
  e.epoch = epoch;
  e.begin = begin;
  e.end = end;
  e.acl_independent = acl_independent;
  return e;
}

int TagOf(const std::shared_ptr<const CacheableResult>& p) {
  return static_cast<const Blob*>(p.get())->tag();
}

TEST(ResultCacheTest, MissLeadsThenHitSharesPayload) {
  ResultCache cache;
  ResultKey k = Key("q1");
  auto p1 = cache.Get(k, 5);
  EXPECT_EQ(p1.outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(k, MakeEntry(5, 0, 100)));
  auto p2 = cache.Get(k, 5);
  ASSERT_EQ(p2.outcome, ResultCache::ProbeOutcome::kHit);
  EXPECT_EQ(p2.epoch, 5u);
  auto p3 = cache.Get(k, 9);
  ASSERT_EQ(p3.outcome, ResultCache::ProbeOutcome::kHit);
  // Hits share the published payload by reference, never a copy.
  EXPECT_EQ(p2.payload.get(), p3.payload.get());
  auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.entries, 1u);
  // p3's lead was never taken (it hit); p2 hit; only the original flight
  // existed, and Publish released it — a fresh key probes clean.
  EXPECT_EQ(cache.Get(Key("q2"), 5).outcome,
            ResultCache::ProbeOutcome::kMissLead);
  cache.Abandon(Key("q2"));
}

TEST(ResultCacheTest, OlderReaderNotServedNewerEntry) {
  ResultCache cache;
  ResultKey k = Key("q");
  EXPECT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(k, MakeEntry(5, 0, 100)));
  // A reader pinned at epoch 4 predates the entry's snapshot: the entry may
  // bake in updates the reader's snapshot excludes, so it must miss.
  auto p = cache.Get(k, 4);
  EXPECT_EQ(p.outcome, ResultCache::ProbeOutcome::kMissLead);
  cache.Abandon(k);
  // The entry itself is untouched for current readers.
  EXPECT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kHit);
}

TEST(ResultCacheTest, RangeInvalidationIsFootprintScoped) {
  ResultCache cache;
  ResultKey hit_key = Key("overlap");
  ResultKey miss_key = Key("disjoint");
  ResultKey indep_key = Key("independent");
  for (const ResultKey& k : {hit_key, miss_key, indep_key}) {
    ASSERT_EQ(cache.Get(k, 1).outcome, ResultCache::ProbeOutcome::kMissLead);
  }
  ASSERT_TRUE(cache.Publish(hit_key, MakeEntry(1, 10, 20)));
  ASSERT_TRUE(cache.Publish(miss_key, MakeEntry(1, 100, 200)));
  ASSERT_TRUE(cache.Publish(indep_key, MakeEntry(1, 0, 0, true)));

  cache.InvalidateAclRange(15, 55, 2);

  // Overlapping footprint erased; disjoint and acl-independent survive.
  EXPECT_EQ(cache.Get(hit_key, 2).outcome,
            ResultCache::ProbeOutcome::kMissLead);
  cache.Abandon(hit_key);
  EXPECT_EQ(cache.Get(miss_key, 2).outcome, ResultCache::ProbeOutcome::kHit);
  EXPECT_EQ(cache.Get(indep_key, 2).outcome, ResultCache::ProbeOutcome::kHit);
  auto s = cache.stats();
  EXPECT_EQ(s.invalidated, 1u);
  EXPECT_EQ(s.entries, 2u);
}

TEST(ResultCacheTest, InvalidationSparesEntriesAtOrAfterCommitEpoch) {
  ResultCache cache;
  ResultKey k = Key("q");
  ASSERT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(k, MakeEntry(5, 0, 100)));
  // The commit at epoch 5 is what the entry was computed against — an
  // invalidation for that same commit must not erase it.
  cache.InvalidateAclRange(0, 100, 5);
  EXPECT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kHit);
  cache.InvalidateAclRange(0, 100, 6);
  EXPECT_EQ(cache.Get(k, 6).outcome, ResultCache::ProbeOutcome::kMissLead);
  cache.Abandon(k);
}

TEST(ResultCacheTest, FlushErasesAllAndRaisesFloor) {
  ResultCache cache;
  for (const char* q : {"a", "b", "c"}) {
    ResultKey k = Key(q);
    ASSERT_EQ(cache.Get(k, 1).outcome, ResultCache::ProbeOutcome::kMissLead);
    ASSERT_TRUE(cache.Publish(k, MakeEntry(1, 0, 10)));
  }
  EXPECT_EQ(cache.stats().entries, 3u);
  cache.Flush(10);
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.flushes, 1u);
  // Anything computed before the flush epoch is rejected from here on, even
  // acl-independent answers (the flush models a shape change).
  ResultKey k = Key("late");
  ASSERT_EQ(cache.Get(k, 9).outcome, ResultCache::ProbeOutcome::kMissLead);
  EXPECT_FALSE(cache.Publish(k, MakeEntry(9, 0, 0, true)));
  ASSERT_EQ(cache.Get(k, 10).outcome, ResultCache::ProbeOutcome::kMissLead);
  EXPECT_TRUE(cache.Publish(k, MakeEntry(10, 0, 0, true)));
}

TEST(ResultCacheTest, LatePublishRejectedByRacingInvalidation) {
  ResultCache cache;
  ResultKey k = Key("racy");
  ASSERT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  // The evaluation is in flight when a commit invalidates its footprint.
  cache.InvalidateAclRange(0, 100, 7);
  EXPECT_FALSE(cache.Publish(k, MakeEntry(5, 10, 20)));
  EXPECT_EQ(cache.stats().rejected_inserts, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
  // Disjoint footprints and acl-independent answers are unaffected by the
  // recorded event and publish normally.
  ResultKey k2 = Key("disjoint");
  ASSERT_EQ(cache.Get(k2, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  EXPECT_TRUE(cache.Publish(k2, MakeEntry(5, 200, 300)));
  ResultKey k3 = Key("independent");
  ASSERT_EQ(cache.Get(k3, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  EXPECT_TRUE(cache.Publish(k3, MakeEntry(5, 0, 0, true)));
}

TEST(ResultCacheTest, RejectedPublishStillReleasesFlight) {
  ResultCache cache;
  ResultKey k = Key("racy");
  ASSERT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  cache.Flush(9);
  EXPECT_FALSE(cache.Publish(k, MakeEntry(5, 0, 10)));
  // The flight must be gone: the next probe takes leadership instead of
  // reporting an in-flight evaluation that will never land.
  EXPECT_EQ(cache.Get(k, 9).outcome, ResultCache::ProbeOutcome::kMissLead);
  cache.Abandon(k);
}

TEST(ResultCacheTest, EventRingOverflowRaisesFloor) {
  ResultCache cache;
  // 257 events overflow the 256-entry ring; the dropped event's epoch (1)
  // becomes the floor, so publishes from before it can no longer be checked
  // and are rejected outright — fail closed, never serve maybe-stale.
  for (uint64_t e = 1; e <= 257; ++e) {
    cache.InvalidateAclRange(1000 * e, 1000 * e + 1, e);
  }
  ResultKey k = Key("ancient");
  ASSERT_EQ(cache.Get(k, 300).outcome, ResultCache::ProbeOutcome::kMissLead);
  EXPECT_FALSE(cache.Publish(k, MakeEntry(0, 0, 0, true)));
  // Entries at or above the floor still publish (subject to the remaining
  // recorded events; this one is acl-independent).
  ASSERT_EQ(cache.Get(k, 300).outcome, ResultCache::ProbeOutcome::kMissLead);
  EXPECT_TRUE(cache.Publish(k, MakeEntry(300, 0, 0, true)));
}

TEST(ResultCacheTest, LruEvictsColdEntriesWithinBudget) {
  ResultCacheOptions opts;
  opts.shards = 1;  // one shard so every key shares one LRU list
  opts.max_bytes = 1024;
  ResultCache cache(opts);
  ResultKey a = Key("a"), b = Key("b"), c = Key("c");
  ASSERT_EQ(cache.Get(a, 1).outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(a, MakeEntry(1, 0, 10, false, 300, 1)));
  ASSERT_EQ(cache.Get(b, 1).outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(b, MakeEntry(1, 0, 10, false, 300, 2)));
  // Touch a so b is the cold end.
  ASSERT_EQ(cache.Get(a, 1).outcome, ResultCache::ProbeOutcome::kHit);
  ASSERT_EQ(cache.Get(c, 1).outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(c, MakeEntry(1, 0, 10, false, 300, 3)));
  auto s = cache.stats();
  EXPECT_GE(s.evictions, 1u);
  EXPECT_LE(s.bytes, opts.max_bytes);
  EXPECT_EQ(cache.Get(a, 1).outcome, ResultCache::ProbeOutcome::kHit);
  EXPECT_EQ(cache.Get(c, 1).outcome, ResultCache::ProbeOutcome::kHit);
  EXPECT_EQ(cache.Get(b, 1).outcome, ResultCache::ProbeOutcome::kMissLead);
  cache.Abandon(b);
}

TEST(ResultCacheTest, OversizedEntryRejectedWithoutEvicting) {
  ResultCacheOptions opts;
  opts.shards = 1;
  opts.max_bytes = 1024;
  ResultCache cache(opts);
  ResultKey small = Key("small");
  ASSERT_EQ(cache.Get(small, 1).outcome,
            ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(small, MakeEntry(1, 0, 10, false, 100)));
  ResultKey huge = Key("huge");
  ASSERT_EQ(cache.Get(huge, 1).outcome, ResultCache::ProbeOutcome::kMissLead);
  // An entry that alone exceeds the shard budget is rejected outright
  // instead of evicting everything else and still not fitting.
  EXPECT_FALSE(cache.Publish(huge, MakeEntry(1, 0, 10, false, 5000)));
  auto s = cache.stats();
  EXPECT_EQ(s.rejected_inserts, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.Get(small, 1).outcome, ResultCache::ProbeOutcome::kHit);
}

TEST(ResultCacheTest, ReplaceKeepsNewerEpoch) {
  ResultCache cache;
  ResultKey k = Key("q");
  ASSERT_EQ(cache.Get(k, 9).outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(k, MakeEntry(5, 0, 10, false, 16, 5)));
  // A newer-epoch answer replaces the resident one...
  ASSERT_TRUE(cache.Publish(k, MakeEntry(7, 0, 10, false, 16, 7)));
  auto p = cache.Get(k, 9);
  ASSERT_EQ(p.outcome, ResultCache::ProbeOutcome::kHit);
  EXPECT_EQ(TagOf(p.payload), 7);
  // ...and an older-epoch late arrival does not regress it (both answers
  // are correct for their epochs; the cache keeps the newer).
  ASSERT_TRUE(cache.Publish(k, MakeEntry(6, 0, 10, false, 16, 6)));
  p = cache.Get(k, 9);
  ASSERT_EQ(p.outcome, ResultCache::ProbeOutcome::kHit);
  EXPECT_EQ(TagOf(p.payload), 7);
}

TEST(ResultCacheTest, SingleFlightWaitersConvergeOnLeader) {
  ResultCache cache;
  ResultKey k = Key("shared");
  ASSERT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);

  constexpr int kWaiters = 4;
  std::atomic<int> arrived{0};
  std::vector<ResultCache::Probe> probes(kWaiters);
  std::vector<std::thread> threads;
  threads.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    threads.emplace_back([&, i] {
      arrived.fetch_add(1);
      probes[i] = cache.GetOrWait(k, 5);
    });
  }
  while (arrived.load() < kWaiters) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(cache.Publish(k, MakeEntry(3, 0, 10, false, 16, 42)));
  for (std::thread& t : threads) t.join();
  // Every waiter is served the leader's answer; none evaluated live.
  for (const ResultCache::Probe& p : probes) {
    ASSERT_EQ(p.outcome, ResultCache::ProbeOutcome::kHit);
    EXPECT_EQ(TagOf(p.payload), 42);
  }
}

TEST(ResultCacheTest, AbandonWakesWaiterIntoLeadership) {
  ResultCache cache;
  ResultKey k = Key("abandoned");
  ASSERT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  std::atomic<bool> arrived{false};
  ResultCache::Probe waiter_probe;
  std::thread waiter([&] {
    arrived.store(true);
    waiter_probe = cache.GetOrWait(k, 5);
  });
  while (!arrived.load()) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  cache.Abandon(k);  // the leader's evaluation failed
  waiter.join();
  // The waiter wakes, finds no entry and no flight, and takes over.
  EXPECT_EQ(waiter_probe.outcome, ResultCache::ProbeOutcome::kMissLead);
  ASSERT_TRUE(cache.Publish(k, MakeEntry(5, 0, 10)));
  EXPECT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kHit);
}

TEST(ResultCacheTest, ConcurrentMissOnSameKeyReportsInFlight) {
  ResultCache cache;
  ResultKey k = Key("inflight");
  ASSERT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  // The non-blocking probe never waits: a second miss on a led key reports
  // kMissInFlight so batch paths can evaluate live without blocking.
  EXPECT_EQ(cache.Get(k, 5).outcome,
            ResultCache::ProbeOutcome::kMissInFlight);
  cache.Abandon(k);
  EXPECT_EQ(cache.Get(k, 5).outcome, ResultCache::ProbeOutcome::kMissLead);
  cache.Abandon(k);
}

TEST(PlanCacheTest, InsertConvergesOnFirstResident) {
  PlanCache<int> cache(8);
  EXPECT_EQ(cache.Get("q"), nullptr);
  auto mine = std::make_shared<int>(1);
  auto resident = cache.Insert("q", mine);
  EXPECT_EQ(resident.get(), mine.get());
  // A racing second insert yields the already-resident plan, so every
  // caller shares one instance.
  auto theirs = cache.Insert("q", std::make_shared<int>(2));
  EXPECT_EQ(theirs.get(), mine.get());
  EXPECT_EQ(cache.Get("q").get(), mine.get());
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, LruCapEvictsColdPlans) {
  PlanCache<int> cache(2);
  cache.Insert("a", std::make_shared<int>(1));
  cache.Insert("b", std::make_shared<int>(2));
  EXPECT_NE(cache.Get("a"), nullptr);  // touch a; b is now cold
  cache.Insert("c", std::make_shared<int>(3));
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
}

}  // namespace
}  // namespace secxml::cache
