// Exercises the execution layer (src/exec) directly against the primitives
// it unified:
//  - SecureCursor::FetchCandidate agrees with SecureStore::Accessible on
//    every node, view on or off, page skip on or off;
//  - the compiled SubjectView page verdicts and the header-direct
//    SecureStore::PageWholly* tests agree on every page of a seeded store
//    for every subject (the single-classification regression — both now run
//    through SubjectView::ClassifyPage);
//  - ChildWalk yields exactly the children a manual FollowingSibling walk
//    yields, with per-child accessibility matching the store;
//  - LabelStreamCursor agrees with DolLabeling::Accessible in monotone
//    sweeps, including forward gaps (a stream filter skipping suppressed
//    subtrees never checks the nodes inside them);
//  - ExecStats invariants: access_only_fetches is structurally zero and
//    every scanned record is either ACCESS-checked or provably check-free.

#include "exec/secure_cursor.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/dol_labeling.h"
#include "core/secure_store.h"
#include "exec/label_cursor.h"
#include "storage/paged_file.h"
#include "workload/synthetic_acl.h"
#include "xml/xmark_generator.h"

namespace secxml {
namespace {

constexpr size_t kNumSubjects = 3;

struct Fixture {
  Document doc;
  DolLabeling labeling;
  MemPagedFile file;
  std::unique_ptr<SecureStore> store;
};

void BuildFixture(Fixture* f, double accessibility = 0.4,
                  uint64_t seed = 17) {
  XMarkOptions xopts;
  xopts.seed = seed;
  xopts.target_nodes = 1500;
  ASSERT_TRUE(GenerateXMark(xopts, &f->doc).ok());
  SyntheticAclOptions aopts;
  aopts.seed = seed + 100;
  aopts.accessibility_ratio = accessibility;
  IntervalAccessMap map = GenerateSyntheticAclMap(f->doc, kNumSubjects, aopts);
  f->labeling = DolLabeling::BuildFromEvents(
      map.num_nodes(), map.InitialAcl(), map.CollectEvents());
  NokStoreOptions sopts;
  sopts.max_records_per_page = 32;  // many pages => real skip behavior
  ASSERT_TRUE(
      SecureStore::Build(f->doc, f->labeling, &f->file, sopts, &f->store)
          .ok());
}

TEST(SecureCursorTest, FetchCandidateAgreesWithStoreAccessible) {
  Fixture f;
  BuildFixture(&f);
  for (SubjectId s = 0; s < kNumSubjects; ++s) {
    for (bool use_view : {true, false}) {
      for (bool page_skip : {true, false}) {
        SecureCursor cursor(f.store.get(),
                            {/*secure=*/true, s, page_skip, use_view});
        ASSERT_TRUE(cursor.Attach().ok());
        cursor.BeginScan();
        for (NodeId n = 0; n < f.store->num_nodes(); ++n) {
          NokRecord rec{};
          bool accessible = true;
          auto fetched = cursor.FetchCandidate(n, &rec, &accessible);
          ASSERT_TRUE(fetched.ok()) << fetched.status();
          auto want = f.store->Accessible(s, n);
          ASSERT_TRUE(want.ok()) << want.status();
          if (!*fetched) {
            // Skipped without loading: only allowed when the whole page is
            // provably dead, which implies the node is inaccessible.
            EXPECT_TRUE(page_skip);
            EXPECT_FALSE(*want) << "node " << n << " subject " << s;
          } else {
            EXPECT_EQ(accessible, *want) << "node " << n << " subject " << s
                                         << " use_view " << use_view;
            auto direct = f.store->nok()->Record(n);
            ASSERT_TRUE(direct.ok());
            EXPECT_EQ(rec.tag, direct->tag);
            EXPECT_EQ(rec.depth, direct->depth);
            EXPECT_EQ(rec.subtree_size, direct->subtree_size);
          }
        }
        EXPECT_EQ(cursor.stats().access_only_fetches, 0u);
      }
    }
  }
}

// The satellite regression: both page-skip implementations (compiled view
// verdicts and header-direct SecureStore probes) classify every page of a
// seeded document identically for every subject.
TEST(SecureCursorTest, PageVerdictsAgreeWithHeaderDirectProbes) {
  Fixture f;
  BuildFixture(&f);
  for (SubjectId s = 0; s < kNumSubjects; ++s) {
    auto view = f.store->View(s);
    ASSERT_TRUE(view.ok());
    for (size_t p = 0; p < f.store->nok()->num_pages(); ++p) {
      EXPECT_EQ((*view)->PageWhollyDead(p),
                f.store->PageWhollyInaccessible(p, s))
          << "page " << p << " subject " << s;
      EXPECT_EQ((*view)->PageWhollyLive(p),
                f.store->PageWhollyAccessible(p, s))
          << "page " << p << " subject " << s;
      // Ground truth from the embedded codes: a "wholly dead" verdict must
      // mean every node in the page is inaccessible (and dually for live).
      const auto& info = f.store->nok()->page_infos()[p];
      bool all_dead = true, all_live = true;
      for (NodeId n = info.first_node;
           n < info.first_node + info.num_records; ++n) {
        auto acc = f.store->Accessible(s, n);
        ASSERT_TRUE(acc.ok());
        (*acc ? all_dead : all_live) = false;
      }
      if (f.store->PageWhollyInaccessible(p, s)) EXPECT_TRUE(all_dead);
      if (f.store->PageWhollyAccessible(p, s)) EXPECT_TRUE(all_live);
    }
  }
}

TEST(SecureCursorTest, ChildWalkMatchesManualWalk) {
  Fixture f;
  BuildFixture(&f);
  NokStore* nok = f.store->nok();

  // Manual reference walk over the root's children.
  auto manual_children = [&](NodeId parent) {
    std::vector<NodeId> out;
    NokRecord prec = *nok->Record(parent);
    NodeId end = parent + prec.subtree_size;
    NodeId c = NokStore::FirstChild(parent, prec);
    while (c != kInvalidNode) {
      out.push_back(c);
      NokRecord crec = *nok->Record(c);
      c = NokStore::FollowingSibling(c, crec, end);
    }
    return out;
  };

  for (NodeId parent : {NodeId{0}, NodeId{1}}) {
    std::vector<NodeId> want = manual_children(parent);
    NokRecord prec = *nok->Record(parent);

    // Non-secure walk: every child, in order.
    {
      SecureCursor cursor(f.store.get(), {});
      ASSERT_TRUE(cursor.Attach().ok());
      cursor.BeginScan();
      SecureCursor::ChildWalk walk(&cursor, parent, prec);
      std::vector<NodeId> got;
      NodeId u = kInvalidNode;
      NokRecord rec{};
      bool acc = true;
      for (;;) {
        auto more = walk.Next(&u, &rec, &acc);
        ASSERT_TRUE(more.ok());
        if (!*more) break;
        got.push_back(u);
        EXPECT_TRUE(acc);
      }
      EXPECT_EQ(got, want);
    }

    // Secure walk without page skip: same children, accessibility flags
    // matching the store. With page skip: a subsequence, and everything
    // dropped lies in a wholly-dead page (hence inaccessible).
    for (SubjectId s = 0; s < kNumSubjects; ++s) {
      for (bool page_skip : {false, true}) {
        SecureCursor cursor(f.store.get(),
                            {/*secure=*/true, s, page_skip, true});
        ASSERT_TRUE(cursor.Attach().ok());
        cursor.BeginScan();
        SecureCursor::ChildWalk walk(&cursor, parent, prec);
        std::vector<NodeId> got;
        NodeId u = kInvalidNode;
        NokRecord rec{};
        bool acc = true;
        size_t wi = 0;
        for (;;) {
          auto more = walk.Next(&u, &rec, &acc);
          ASSERT_TRUE(more.ok());
          if (!*more) break;
          got.push_back(u);
          EXPECT_EQ(acc, *f.store->Accessible(s, u)) << "child " << u;
          // Children skipped over (page-skip mode) must be inaccessible.
          while (wi < want.size() && want[wi] != u) {
            EXPECT_TRUE(page_skip);
            EXPECT_FALSE(*f.store->Accessible(s, want[wi]))
                << "skipped child " << want[wi] << " subject " << s;
            ++wi;
          }
          ASSERT_LT(wi, want.size());
          ++wi;
        }
        while (wi < want.size()) {
          EXPECT_TRUE(page_skip);
          EXPECT_FALSE(*f.store->Accessible(s, want[wi]));
          ++wi;
        }
        if (!page_skip) EXPECT_EQ(got, want);
      }
    }
  }
}

TEST(SecureCursorTest, LabelStreamCursorMatchesLabeling) {
  Fixture f;
  BuildFixture(&f);
  const DolLabeling& labeling = f.labeling;
  for (SubjectId s = 0; s < kNumSubjects; ++s) {
    for (bool use_view : {true, false}) {
      // Dense monotone sweep.
      LabelStreamCursor dense(&labeling, s, use_view);
      for (NodeId n = 0; n < labeling.num_nodes(); ++n) {
        EXPECT_EQ(dense.Accessible(n), labeling.Accessible(s, n))
            << "node " << n << " subject " << s;
      }
      EXPECT_EQ(dense.stats().nodes_scanned, labeling.num_nodes());
      EXPECT_EQ(dense.stats().codes_checked, labeling.num_nodes());

      // Sweep with forward gaps (a filter skipping suppressed subtrees
      // never consults the nodes inside them).
      LabelStreamCursor gappy(&labeling, s, use_view);
      for (NodeId n = 0; n < labeling.num_nodes(); n += 1 + n % 7) {
        EXPECT_EQ(gappy.Accessible(n), labeling.Accessible(s, n))
            << "node " << n << " subject " << s;
      }
    }
  }
}

TEST(SecureCursorTest, ScanStatsInvariants) {
  Fixture f;
  BuildFixture(&f);
  for (bool use_view : {true, false}) {
    SecureCursor cursor(f.store.get(), {/*secure=*/true, /*subject=*/0,
                                        /*page_skip=*/true, use_view});
    ASSERT_TRUE(cursor.Attach().ok());
    cursor.BeginScan();
    for (NodeId n = 0; n < f.store->num_nodes(); ++n) {
      NokRecord rec{};
      bool acc = true;
      ASSERT_TRUE(cursor.FetchCandidate(n, &rec, &acc).ok());
    }
    const ExecStats& st = cursor.stats();
    // The zero-extra-I/O property as a structural invariant.
    EXPECT_EQ(st.access_only_fetches, 0u);
    // Every materialized record was either checked or on a check-free page.
    EXPECT_EQ(st.nodes_scanned, st.codes_checked + st.checks_elided);
    // Without the compiled view there is no check-free fast path.
    if (!use_view) EXPECT_EQ(st.checks_elided, 0u);
    // The fixture's 40% accessibility over 32-record pages produces dead
    // pages; the skip counter must see them.
    EXPECT_GT(st.pages_skipped, 0u);
  }
}

}  // namespace
}  // namespace secxml
