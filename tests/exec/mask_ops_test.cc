// WideClassMask semantics against a naive bit-set reference, and the
// dispatched SIMD kernel tiers (scalar / AVX2 / AVX-512) pinned bit-identical
// to each other on randomized mask arrays — including the strided variant
// over an 80-byte struct that mirrors MaskedBinding's layout.

#include "exec/mask_ops.h"

#include <gtest/gtest.h>

#include <array>
#include <bitset>
#include <cstring>
#include <vector>

#include "common/rng.h"

namespace secxml {
namespace {

using Ref = std::bitset<kMaxBatchClasses>;

WideClassMask RandomMask(Rng* rng, double density = 0.5) {
  WideClassMask m;
  for (size_t k = 0; k < kMaxBatchClasses; ++k) {
    if (rng->Bernoulli(density)) m.Set(k);
  }
  return m;
}

Ref ToRef(const WideClassMask& m) {
  Ref r;
  for (size_t k = 0; k < kMaxBatchClasses; ++k) r[k] = m.Test(k);
  return r;
}

TEST(WideClassMaskTest, BitAndFirstN) {
  for (size_t k : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
                   size_t{200}, size_t{511}}) {
    WideClassMask m = WideClassMask::Bit(k);
    EXPECT_EQ(m.count(), 1u);
    EXPECT_TRUE(m.Test(k));
    EXPECT_EQ(m.FirstSetBit(), k);
  }
  for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{65},
                   size_t{128}, size_t{320}, size_t{511}, size_t{512}}) {
    WideClassMask m = WideClassMask::FirstN(n);
    EXPECT_EQ(m.count(), n) << n;
    for (size_t k = 0; k < kMaxBatchClasses; ++k) {
      EXPECT_EQ(m.Test(k), k < n) << "n=" << n << " k=" << k;
    }
  }
}

TEST(WideClassMaskTest, SetResetAnyNoneCount) {
  WideClassMask m;
  EXPECT_TRUE(m.none());
  EXPECT_FALSE(m.any());
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.FirstSetBit(), kMaxBatchClasses);
  m.Set(70);
  m.Set(400);
  EXPECT_TRUE(m.any());
  EXPECT_EQ(m.count(), 2u);
  EXPECT_EQ(m.FirstSetBit(), 70u);
  m.Reset(70);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.FirstSetBit(), 400u);
  m.Reset(400);
  EXPECT_TRUE(m.none());
}

TEST(WideClassMaskTest, OperatorsMatchBitsetReference) {
  Rng rng(20260808);
  for (int iter = 0; iter < 200; ++iter) {
    WideClassMask a = RandomMask(&rng), b = RandomMask(&rng, 0.3);
    Ref ra = ToRef(a), rb = ToRef(b);

    EXPECT_EQ(ToRef(a & b), ra & rb);
    EXPECT_EQ(ToRef(a | b), ra | rb);
    EXPECT_EQ(ToRef(a.AndNot(b)), ra & ~rb);
    EXPECT_EQ(a.count(), ra.count());
    EXPECT_EQ(a.Intersects(b), (ra & rb).any());
    EXPECT_EQ(a.Covers(b), (rb & ~ra).none());
    EXPECT_EQ(a == b, ra == rb);

    WideClassMask c = a;
    c &= b;
    EXPECT_EQ(ToRef(c), ra & rb);
    c = a;
    c |= b;
    EXPECT_EQ(ToRef(c), ra | rb);
  }
}

TEST(WideClassMaskTest, CoversIsReflexiveAndFailClosed) {
  Rng rng(99);
  for (int iter = 0; iter < 50; ++iter) {
    WideClassMask a = RandomMask(&rng);
    EXPECT_TRUE(a.Covers(a));
    EXPECT_TRUE(a.Covers(WideClassMask()));  // empty sub always covered
    EXPECT_TRUE(WideClassMask::FirstN(kMaxBatchClasses).Covers(a));
    if (a.count() < kMaxBatchClasses) {
      // Adding one stray bit outside `a` breaks coverage.
      WideClassMask sub = a;
      for (size_t k = 0; k < kMaxBatchClasses; ++k) {
        if (!a.Test(k)) {
          sub.Set(k);
          break;
        }
      }
      EXPECT_FALSE(a.Covers(sub));
    }
  }
}

TEST(WideClassMaskTest, ForEachSetBitAscending) {
  Rng rng(7);
  WideClassMask m = RandomMask(&rng, 0.1);
  std::vector<size_t> got;
  m.ForEachSetBit([&](size_t k) { got.push_back(k); });
  std::vector<size_t> want;
  for (size_t k = 0; k < kMaxBatchClasses; ++k) {
    if (m.Test(k)) want.push_back(k);
  }
  EXPECT_EQ(got, want);
}

// --- Kernel differential: every supported tier vs the scalar kernels. ---

std::vector<MaskIsa> SupportedIsas() {
  std::vector<MaskIsa> isas = {MaskIsa::kScalar};
  if (MaskIsaSupported(MaskIsa::kAvx2)) isas.push_back(MaskIsa::kAvx2);
  if (MaskIsaSupported(MaskIsa::kAvx512)) isas.push_back(MaskIsa::kAvx512);
  return isas;
}

// Mirror of MaskedBinding's layout: mask at a 16-byte offset inside an
// 80-byte struct, so stride and offset exercise the unaligned strided path.
struct StridedRow {
  uint64_t pad0 = 0;
  uint64_t pad1 = 0;
  WideClassMask mask;
};
static_assert(sizeof(StridedRow) == 80);

TEST(MaskKernelsTest, TiersAreBitIdentical) {
  const MaskKernels& scalar = MaskKernelsFor(MaskIsa::kScalar);
  ASSERT_EQ(scalar.isa, MaskIsa::kScalar);
  Rng rng(0xfeedbeef);

  for (MaskIsa isa : SupportedIsas()) {
    const MaskKernels& k = MaskKernelsFor(isa);
    EXPECT_EQ(k.isa, isa);
    // Sizes around the vector-width boundaries (0, 1, odd, 2^k, large).
    for (size_t n : {size_t{0}, size_t{1}, size_t{2}, size_t{3}, size_t{7},
                     size_t{8}, size_t{17}, size_t{64}, size_t{129}}) {
      std::vector<WideClassMask> rows(n);
      for (auto& r : rows) r = RandomMask(&rng);
      const WideClassMask m = RandomMask(&rng, 0.6);

      // and_broadcast
      std::vector<WideClassMask> a = rows, b = rows;
      scalar.and_broadcast(a.data(), n, m);
      k.and_broadcast(b.data(), n, m);
      EXPECT_EQ(a, b) << MaskIsaName(isa) << " n=" << n;
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(a[i], rows[i] & m);

      // and_broadcast_strided over the MaskedBinding-shaped rows
      std::vector<StridedRow> sa(n), sb(n);
      for (size_t i = 0; i < n; ++i) sa[i].mask = sb[i].mask = rows[i];
      scalar.and_broadcast_strided(n ? &sa[0].mask : nullptr,
                                   sizeof(StridedRow), n, m);
      k.and_broadcast_strided(n ? &sb[0].mask : nullptr, sizeof(StridedRow),
                              n, m);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(sa[i].mask, rows[i] & m);
        EXPECT_EQ(sa[i].mask, sb[i].mask) << MaskIsaName(isa) << " i=" << i;
        EXPECT_EQ(sb[i].pad0, 0u);  // neighbors untouched
        EXPECT_EQ(sb[i].pad1, 0u);
      }

      // reduce_and / reduce_or / popcount_rows
      WideClassMask and_s, and_k, or_s, or_k;
      scalar.reduce_and(rows.data(), n, &and_s);
      k.reduce_and(rows.data(), n, &and_k);
      scalar.reduce_or(rows.data(), n, &or_s);
      k.reduce_or(rows.data(), n, &or_k);
      EXPECT_EQ(and_s, and_k) << MaskIsaName(isa) << " n=" << n;
      EXPECT_EQ(or_s, or_k) << MaskIsaName(isa) << " n=" << n;
      EXPECT_EQ(scalar.popcount_rows(rows.data(), n),
                k.popcount_rows(rows.data(), n))
          << MaskIsaName(isa) << " n=" << n;

      // Scalar kernels vs naive reference.
      WideClassMask want_and = WideClassMask::FirstN(kMaxBatchClasses);
      WideClassMask want_or;
      uint64_t want_pop = 0;
      for (const auto& r : rows) {
        want_and &= r;
        want_or |= r;
        want_pop += r.count();
      }
      EXPECT_EQ(and_s, want_and);
      EXPECT_EQ(or_s, want_or);
      EXPECT_EQ(scalar.popcount_rows(rows.data(), n), want_pop);
    }
  }
}

TEST(MaskKernelsTest, ReduceAndOfEmptyIsAllOnes) {
  for (MaskIsa isa : SupportedIsas()) {
    WideClassMask out;
    MaskKernelsFor(isa).reduce_and(nullptr, 0, &out);
    EXPECT_EQ(out, WideClassMask::FirstN(kMaxBatchClasses)) << MaskIsaName(isa);
    MaskKernelsFor(isa).reduce_or(nullptr, 0, &out);
    EXPECT_TRUE(out.none()) << MaskIsaName(isa);
  }
}

TEST(MaskKernelsTest, ForceMaskIsaClampsToSupported) {
  const MaskIsa before = ActiveMaskIsa();
  // kScalar is always accepted.
  EXPECT_EQ(ForceMaskIsa(MaskIsa::kScalar), MaskIsa::kScalar);
  EXPECT_EQ(ActiveMaskIsa(), MaskIsa::kScalar);
  EXPECT_EQ(ActiveMaskKernels().isa, MaskIsa::kScalar);
  // Requests are clamped to the best supported tier at or below.
  MaskIsa got = ForceMaskIsa(MaskIsa::kAvx512);
  EXPECT_TRUE(MaskIsaSupported(got));
  if (MaskIsaSupported(MaskIsa::kAvx512)) {
    EXPECT_EQ(got, MaskIsa::kAvx512);
  } else if (MaskIsaSupported(MaskIsa::kAvx2)) {
    EXPECT_EQ(got, MaskIsa::kAvx2);
  } else {
    EXPECT_EQ(got, MaskIsa::kScalar);
  }
  EXPECT_EQ(ActiveMaskIsa(), got);
  ForceMaskIsa(before);  // restore for any tests sharing the process
}

TEST(MaskKernelsTest, NamesAreStable) {
  EXPECT_STREQ(MaskIsaName(MaskIsa::kScalar), "scalar");
  EXPECT_STREQ(MaskIsaName(MaskIsa::kAvx2), "avx2");
  EXPECT_STREQ(MaskIsaName(MaskIsa::kAvx512), "avx512");
}

}  // namespace
}  // namespace secxml
