#!/usr/bin/env sh
# Lint: the query and core layers must reach NoK pages through the execution
# layer (src/exec), never through the raw scan primitives. The exec layer is
# where fetch, DOL decode, ACCESS check, check-free elision, dead-page skip
# and readahead hints are fused — a direct call site bypasses the ExecStats
# accounting and reintroduces the per-caller access-check copies this layer
# removed.
#
# Whitelisted direct uses (legitimately outside the scan path):
#   - src/core/secure_store.cc: PageTransitions on the UPDATE/extract paths
#     (SetRangeAccess page rewrite, CompactCodebook remap, ExtractLabeling);
#   - src/core/secure_store.{h,cc}: Codebook::Accessible for the point-probe
#     oracle SecureStore::Accessible and the header-only first_code
#     classification feeding SubjectView::ClassifyPage;
#   - src/core/dol_labeling.h: the labeling's own definition of node
#     accessibility (the exec LabelStreamCursor's non-view fallback).
#
# Run from the repo root; exits nonzero listing any violation.

set -u
cd "$(dirname "$0")/.."

# report runs as the tail of a pipeline, i.e. in a subshell in POSIX sh —
# a plain `fail=1` there would be lost. Failures land in a marker file.
fail_marker="${TMPDIR:-/tmp}/check_no_direct_fetch.$$"
rm -f "$fail_marker"
trap 'rm -f "$fail_marker"' EXIT

report() {
  # $1 = description, stdin = offending grep lines (possibly empty)
  lines=$(cat)
  if [ -n "$lines" ]; then
    echo "DIRECT ACCESS VIOLATION: $1" >&2
    echo "$lines" >&2
    : > "$fail_marker"
  fi
}

# Raw scan primitives: forbidden everywhere in query/ and core/. These are
# the calls SecureCursor/PageSweep/PageCodeWalker own.
grep -rn "RecordAndCode\|FirstAtDepthInPage\|buffer_pool()->Fetch\|buffer_pool_\.Fetch" \
    src/query src/core --include='*.cc' --include='*.h' \
  | report "scan primitive outside src/exec (use SecureCursor/PageSweep)"

# Per-node access checks in the query layer: must go through the cursor
# (SecureCursor per subject, MultiSubjectCursor for batches).
grep -rn "Codebook::Accessible\|codebook()\.Accessible\|codebook_\.Accessible\|->Accessible(" \
    src/query --include='*.cc' --include='*.h' \
  | report "direct access check in src/query (use SecureCursor)"

# Codebook column extraction in the query layer: the batch path's word-wide
# checks are MultiSubjectCursor's (it transposes the columns in Attach);
# grouping goes through core's GroupSubjectsByColumn. A direct Column()
# probe in src/query would be a per-caller copy of that machinery.
grep -rn "Codebook::Column\|codebook()\.Column\|codebook_\.Column\|->Column(\|\.Column(" \
    src/query --include='*.cc' --include='*.h' \
  | report "direct codebook column extraction in src/query (use MultiSubjectCursor / GroupSubjectsByColumn)"

# Page transition walks in the query layer: PageCodeWalker owns the decode.
grep -rn "PageTransitions" src/query --include='*.cc' --include='*.h' \
  | report "direct DOL transition walk in src/query (use PageCodeWalker)"

# In core/, PageTransitions is only legitimate on secure_store.cc's update
# and extraction paths; everything else must use PageCodeWalker.
grep -rn "PageTransitions" src/core --include='*.cc' --include='*.h' \
  | grep -v '^src/core/secure_store\.cc:' \
  | report "DOL transition walk in src/core outside the update paths"

# Codebook probes in core/ outside the whitelisted definitional sites.
grep -rn "codebook_\.Accessible\|codebook()\.Accessible" \
    src/core --include='*.cc' --include='*.h' \
  | grep -v '^src/core/secure_store\.\(h\|cc\):' \
  | grep -v '^src/core/dol_labeling\.h:' \
  | report "codebook probe in src/core outside whitelisted oracle sites"

# Raw mask arithmetic: class masks are WideClassMask (src/exec/mask_ops.h)
# and their bulk operations are the dispatched MaskKernels. A hand-rolled
# uint64_t shift/AND over class bits in the query or exec layer would
# silently truncate batches back to 64 classes and bypass the SIMD tiers'
# bit-identity guarantee, so mask word-twiddling has exactly one home.
grep -rn "1ULL <<\|1ull <<\|~0ULL\|~0ull\|uint64_t mask\|mask & (1\|ClassMask = uint64_t" \
    src/query src/exec --include='*.cc' --include='*.h' \
  | grep -v '^src/exec/mask_ops\.h:' \
  | report "raw uint64_t mask arithmetic outside src/exec/mask_ops.h (use WideClassMask / MaskKernels)"

# Shard encapsulation: StoreShard is the serving layer's unit of placement
# (replica + files + WAL + applied-LSN cursor). Only src/serve may name it —
# any other layer holding a StoreShard could scan across shard boundaries
# without the coordinator's document-order merge, or mutate one replica
# without the fence/replication protocol that keeps the fleet convergent.
grep -rn "StoreShard" \
    src/common src/storage src/xml src/core src/nok src/baseline src/exec \
    src/query src/workload --include='*.cc' --include='*.h' \
  | report "StoreShard referenced outside src/serve (route through ShardedStore/ShardCoordinator)"

# Cache encapsulation: the cross-request ResultCache/PlanCache (src/cache)
# may be named only by the layers that own a traffic stream — src/query
# (EvaluateWithCaches/BatchEvaluator) and src/serve (ShardCoordinator).
# A lower layer probing the result cache would bypass the epoch validation
# and single-flight protocol those call sites carry (and core must stay
# payload-agnostic: its commit hooks are plain std::function callbacks).
grep -rn "ResultCache\|PlanCache" \
    src/common src/storage src/xml src/core src/nok src/baseline src/exec \
    src/workload --include='*.cc' --include='*.h' \
  | grep -v ':[0-9]*:[[:space:]]*//' \
  | report "ResultCache/PlanCache referenced outside src/query and src/serve (probe through EvaluateWithCaches / the coordinator)"

fail=0
[ -e "$fail_marker" ] && fail=1
if [ "$fail" -eq 0 ]; then
  echo "check_no_direct_fetch: OK (query/core layers go through src/exec)"
fi
exit "$fail"
